#include "transport/cluster.hpp"

#include <algorithm>
#include <optional>
#include <sstream>
#include <unordered_set>

#include "common/check.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"

namespace modubft::transport {

namespace {
using Clock = std::chrono::steady_clock;
}

struct Cluster::Node {
  ProcessId id;
  std::unique_ptr<sim::Actor> actor;
  Mailbox<Envelope> mailbox;
  std::unique_ptr<Rng> rng;

  // Timers: owned by the node thread exclusively.
  std::vector<TimerEntry> timers;  // unsorted; scanned for the earliest
  std::unordered_set<std::uint64_t> cancelled;
  std::uint64_t next_timer_id = 1;

  std::atomic<bool> stop_requested{false};
  std::atomic<bool> stopped{false};
  // crash_at / restart_at are rebased onto the epoch before the node
  // thread spawns and are owned by the node thread afterwards (the run()
  // straggler audit reads only the immutable *_scheduled flags).
  std::optional<Clock::time_point> crash_at;
  std::optional<Clock::time_point> restart_at;
  std::function<std::unique_ptr<sim::Actor>()> restart_factory;
  bool crash_scheduled = false;
  bool restart_scheduled = false;

  Cluster* cluster = nullptr;
};

/// Context bound to one callback execution on the node thread.
class Cluster::NodeContext final : public sim::Context {
 public:
  NodeContext(Cluster& cluster, Node& node) : cluster_(cluster), node_(node) {}

  ProcessId id() const override { return node_.id; }
  std::uint32_t n() const override { return cluster_.config_.n; }

  SimTime now() const override {
    return static_cast<SimTime>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            Clock::now() - cluster_.epoch_)
            .count());
  }

  void send(ProcessId to, Bytes payload) override {
    MODUBFT_EXPECTS(to.value < cluster_.config_.n);
    cluster_.stats_.messages_sent.fetch_add(1, std::memory_order_relaxed);
    cluster_.stats_.bytes_sent.fetch_add(payload.size(),
                                         std::memory_order_relaxed);
    cluster_.nodes_[to.value]->mailbox.push(
        Envelope{node_.id, std::move(payload), cluster_.since_epoch()});
  }

  void broadcast(const Bytes& payload) override {
    const SimTime sent_at = cluster_.since_epoch();
    cluster_.stats_.messages_sent.fetch_add(cluster_.config_.n,
                                            std::memory_order_relaxed);
    cluster_.stats_.bytes_sent.fetch_add(
        payload.size() * cluster_.config_.n, std::memory_order_relaxed);
    for (std::uint32_t i = 0; i < cluster_.config_.n; ++i) {
      cluster_.nodes_[i]->mailbox.push(Envelope{node_.id, payload, sent_at});
    }
  }

  std::uint64_t set_timer(SimTime delay) override {
    const std::uint64_t id = node_.next_timer_id++;
    node_.timers.push_back(
        TimerEntry{Clock::now() + std::chrono::microseconds(delay), id});
    return id;
  }

  void cancel_timer(std::uint64_t timer_id) override {
    node_.cancelled.insert(timer_id);
  }

  Rng& rng() override { return *node_.rng; }

  void stop() override { node_.stop_requested.store(true); }

 private:
  Cluster& cluster_;
  Node& node_;
};

Cluster::Cluster(ClusterConfig config) : config_(config) {
  MODUBFT_EXPECTS(config_.n > 0);
  Rng root(config_.seed);
  nodes_.reserve(config_.n);
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    auto node = std::make_unique<Node>();
    node->id = ProcessId{i};
    node->rng = std::make_unique<Rng>(root.split(i + 1));
    node->cluster = this;
    nodes_.push_back(std::move(node));
  }
}

Cluster::~Cluster() {
  for (auto& node : nodes_) node->mailbox.close();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void Cluster::set_actor(ProcessId id, std::unique_ptr<sim::Actor> actor) {
  MODUBFT_EXPECTS(id.value < config_.n);
  MODUBFT_EXPECTS(!ran_);
  nodes_[id.value]->actor = std::move(actor);
}

void Cluster::crash_after(ProcessId id, std::chrono::microseconds after) {
  MODUBFT_EXPECTS(id.value < config_.n);
  MODUBFT_EXPECTS(!ran_);
  // Resolved against the epoch when run() starts.
  nodes_[id.value]->crash_at = Clock::time_point(after.count() >= 0
                                                     ? Clock::duration(after)
                                                     : Clock::duration::zero());
  nodes_[id.value]->crash_scheduled = true;
}

void Cluster::set_restart(ProcessId id, std::chrono::microseconds after,
                          std::function<std::unique_ptr<sim::Actor>()> factory) {
  MODUBFT_EXPECTS(id.value < config_.n);
  MODUBFT_EXPECTS(!ran_);
  MODUBFT_EXPECTS(nodes_[id.value]->crash_scheduled);
  MODUBFT_EXPECTS(factory != nullptr);
  nodes_[id.value]->restart_at = Clock::time_point(
      after.count() >= 0 ? Clock::duration(after) : Clock::duration::zero());
  nodes_[id.value]->restart_factory = std::move(factory);
  nodes_[id.value]->restart_scheduled = true;
}

void Cluster::set_delivery_tap(std::function<void(const sim::Delivery&)> tap) {
  MODUBFT_EXPECTS(!ran_);
  tap_ = std::move(tap);
}

SimTime Cluster::since_epoch() const {
  if (epoch_ == Clock::time_point{}) return 0;
  return static_cast<SimTime>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            epoch_)
          .count());
}

void Cluster::tap_delivery(const Envelope& env, ProcessId to) {
  if (!tap_) return;
  // The payload copy happens on the node thread, outside tap_mu_: a tap
  // that stashes the bytes (the safety auditor does) must not stretch the
  // serialized section with a per-frame allocation, and the tap must never
  // observe a buffer another lock protects — the audit path cannot
  // introduce deadlock or delivery reordering beyond serialization.
  const Bytes payload = env.payload;
  sim::Delivery d;
  d.send_time = env.sent_at;
  d.deliver_time = since_epoch();
  d.from = env.from;
  d.to = to;
  d.size = payload.size();
  d.payload = &payload;
  std::lock_guard<std::mutex> lock(tap_mu_);
  tap_(d);
}

void Cluster::node_pump(Node& node, NodeContext& ctx) {
  while (!node.stop_requested.load()) {
    if (node.crash_at.has_value() && Clock::now() >= *node.crash_at) {
      break;  // silent halt: no more receives, no more sends
    }

    // Earliest pending timer bounds the mailbox wait.
    Clock::time_point deadline = Clock::now() + std::chrono::milliseconds(20);
    const TimerEntry* earliest = nullptr;
    for (const TimerEntry& t : node.timers) {
      if (node.cancelled.count(t.id)) continue;
      if (earliest == nullptr || t.due < earliest->due) earliest = &t;
    }
    if (earliest != nullptr && earliest->due < deadline) {
      deadline = earliest->due;
    }
    if (node.crash_at.has_value() && *node.crash_at < deadline) {
      deadline = *node.crash_at;
    }

    std::vector<Envelope> drained = node.mailbox.drain_until(
        deadline, std::max<std::size_t>(1, config_.max_batch));
    if (node.stop_requested.load()) break;
    if (node.crash_at.has_value() && Clock::now() >= *node.crash_at) break;

    if (!drained.empty()) {
      // Taps and counters fire per delivery, in delivery order, before the
      // batch dispatch; the actor then consumes the batch in that same
      // order (the ordering-ticket contract, docs/INGEST.md).
      std::vector<sim::Incoming> batch;
      batch.reserve(drained.size());
      for (Envelope& env : drained) {
        tap_delivery(env, node.id);
        stats_.messages_delivered.fetch_add(1, std::memory_order_relaxed);
        stats_.events_executed.fetch_add(1, std::memory_order_relaxed);
        batch.push_back(sim::Incoming{env.from, std::move(env.payload)});
      }
      node.actor->on_batch(ctx, batch);
      continue;
    }

    // Deadline expiry: fire every due timer.
    const Clock::time_point now = Clock::now();
    std::vector<std::uint64_t> due;
    node.timers.erase(
        std::remove_if(node.timers.begin(), node.timers.end(),
                       [&](const TimerEntry& t) {
                         if (node.cancelled.count(t.id)) {
                           node.cancelled.erase(t.id);
                           return true;
                         }
                         if (t.due <= now) {
                           due.push_back(t.id);
                           return true;
                         }
                         return false;
                       }),
        node.timers.end());
    for (std::uint64_t id : due) {
      if (node.stop_requested.load()) break;
      stats_.events_executed.fetch_add(1, std::memory_order_relaxed);
      node.actor->on_timer(ctx, id);
    }
    if (node.mailbox.closed() && drained.empty() && node.timers.empty()) {
      break;  // shutdown requested by the cluster
    }
  }
}

void Cluster::node_main(Node& node) {
  NodeContext ctx(*this, node);
  for (;;) {
    node.actor->on_start(ctx);
    node_pump(node, ctx);

    // Crash with a scheduled restart: lie dormant (discarding deliveries —
    // a dead node receives nothing) until the restart instant, then come
    // back as a fresh actor.  One-shot semantics: a stop request during
    // the outage abandons the restart instead of hanging the teardown.
    if (!node.crash_at.has_value() || Clock::now() < *node.crash_at ||
        !node.restart_at.has_value() || node.stop_requested.load()) {
      break;  // voluntary stop, teardown, or crash-for-good
    }
    bool aborted = false;
    while (Clock::now() < *node.restart_at) {
      if (node.stop_requested.load()) {
        aborted = true;
        break;
      }
      const Clock::time_point wait_until = std::min(
          *node.restart_at, Clock::now() + std::chrono::milliseconds(20));
      (void)node.mailbox.pop_until(wait_until);  // outage traffic is lost
    }
    if (aborted || node.stop_requested.load()) break;
    node.actor = node.restart_factory();
    node.timers.clear();
    node.cancelled.clear();
    node.crash_at.reset();
    node.restart_at.reset();
    node.restart_factory = nullptr;
  }
  node.stopped.store(true);
}

bool Cluster::run() {
  MODUBFT_EXPECTS(!ran_);
  ran_ = true;
  for (auto& node : nodes_) MODUBFT_EXPECTS(node->actor != nullptr);

  epoch_ = Clock::now();
  // Rebase crash/restart deadlines onto the epoch.
  for (auto& node : nodes_) {
    if (node->crash_at.has_value()) {
      node->crash_at = epoch_ + node->crash_at->time_since_epoch();
    }
    if (node->restart_at.has_value()) {
      node->restart_at = epoch_ + node->restart_at->time_since_epoch();
    }
  }

  threads_.reserve(config_.n);
  for (auto& node : nodes_) {
    threads_.emplace_back([this, &node = *node] { node_main(node); });
  }

  const Clock::time_point deadline = epoch_ + config_.budget;
  bool all_stopped = false;
  while (Clock::now() < deadline) {
    all_stopped = true;
    for (auto& node : nodes_) {
      if (!node->stopped.load()) {
        all_stopped = false;
        break;
      }
    }
    if (all_stopped) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // Snapshot the stragglers before teardown forces everyone to stop, so a
  // budget expiry is diagnosable (and attributable) after run() returns.
  // A crash-for-good node is expected to never stop on its own; a node
  // with a restart schedule is expected to come back and finish, so it IS
  // reported if still running (the node thread owns crash_at by now —
  // audit only the immutable scheduling flags).
  for (auto& node : nodes_) {
    if (!node->stopped.load() &&
        (!node->crash_scheduled || node->restart_scheduled)) {
      unstopped_.push_back(node->id);
    }
  }

  for (auto& node : nodes_) {
    node->stop_requested.store(true);
    node->mailbox.close();
  }
  for (std::thread& t : threads_) t.join();
  threads_.clear();

  elapsed_ = std::chrono::duration_cast<std::chrono::microseconds>(
      Clock::now() - epoch_);

  if (!all_stopped && !unstopped_.empty()) {
    std::ostringstream os;
    os << "Cluster: budget expired with unstopped nodes:";
    for (ProcessId id : unstopped_) os << ' ' << id;
    log_warn(os.str());
  }
  return all_stopped;
}

bool Cluster::stopped(ProcessId id) const {
  MODUBFT_EXPECTS(id.value < config_.n);
  return nodes_[id.value]->stopped.load();
}

std::vector<ProcessId> Cluster::unstopped() const { return unstopped_; }

sim::Stats Cluster::stats() const {
  sim::Stats s;
  s.messages_sent = stats_.messages_sent.load();
  s.messages_delivered = stats_.messages_delivered.load();
  s.bytes_sent = stats_.bytes_sent.load();
  s.events_executed = stats_.events_executed.load();
  return s;
}

}  // namespace modubft::transport
