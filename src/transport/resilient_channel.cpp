#include "transport/resilient_channel.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>

#include "common/check.hpp"
#include "common/crc32.hpp"

namespace modubft::transport {

namespace {
using Clock = std::chrono::steady_clock;

void put_u32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void put_u64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}
}  // namespace

bool net_read_exact(int fd, void* buf, std::size_t len) {
  auto* p = static_cast<std::uint8_t*>(buf);
  while (len > 0) {
    const ssize_t got = ::read(fd, p, len);
    if (got <= 0) return false;  // EOF or error: the connection is done
    p += got;
    len -= static_cast<std::size_t>(got);
  }
  return true;
}

bool net_write_all(int fd, const void* buf, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  while (len > 0) {
    // MSG_NOSIGNAL: a dead peer must surface as a failed send, not SIGPIPE.
    const ssize_t put = ::send(fd, p, len, MSG_NOSIGNAL);
    if (put <= 0) return false;
    p += put;
    len -= static_cast<std::size_t>(put);
  }
  return true;
}

bool net_write2_all(int fd, const void* a, std::size_t alen, const void* b,
                    std::size_t blen) {
  const auto* pa = static_cast<const std::uint8_t*>(a);
  const auto* pb = static_cast<const std::uint8_t*>(b);
  while (alen + blen > 0) {
    iovec iov[2];
    int cnt = 0;
    if (alen > 0) {
      iov[cnt].iov_base = const_cast<std::uint8_t*>(pa);
      iov[cnt].iov_len = alen;
      ++cnt;
    }
    if (blen > 0) {
      iov[cnt].iov_base = const_cast<std::uint8_t*>(pb);
      iov[cnt].iov_len = blen;
      ++cnt;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<std::size_t>(cnt);
    const ssize_t put = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (put <= 0) return false;
    std::size_t n = static_cast<std::size_t>(put);
    const std::size_t from_a = std::min(n, alen);
    pa += from_a;
    alen -= from_a;
    n -= from_a;
    pb += n;
    blen -= n;
  }
  return true;
}

void encode_frame_header(std::uint64_t seq, const Bytes& payload,
                         std::uint8_t out[kFrameHeaderBytes]) {
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u64(out + 4, seq);
  std::uint32_t crc = crc32c_init();
  crc = crc32c_update(crc, out, 12);  // len ‖ seq
  crc = crc32c_update(crc, payload.data(), payload.size());
  put_u32(out + 12, crc32c_final(crc));
}

Bytes encode_frame(std::uint64_t seq, const Bytes& payload) {
  Bytes wire(kFrameHeaderBytes + payload.size());
  encode_frame_header(seq, payload, wire.data());
  if (!payload.empty()) {
    std::memcpy(wire.data() + kFrameHeaderBytes, payload.data(),
                payload.size());
  }
  return wire;
}

FrameHeader decode_frame_header(const std::uint8_t hdr[kFrameHeaderBytes]) {
  FrameHeader h;
  h.len = get_u32(hdr);
  h.seq = get_u64(hdr + 4);
  h.crc = get_u32(hdr + 12);
  return h;
}

bool verify_frame_crc(const FrameHeader& header, const Bytes& payload) {
  std::uint8_t prefix[12];
  put_u32(prefix, header.len);
  put_u64(prefix + 4, header.seq);
  std::uint32_t crc = crc32c_init();
  crc = crc32c_update(crc, prefix, 12);
  crc = crc32c_update(crc, payload.data(), payload.size());
  return crc32c_final(crc) == header.crc;
}

Bytes encode_hello(std::uint32_t sender) {
  Bytes hello(kHelloBytes);
  put_u32(hello.data(), kHelloMagic);
  put_u32(hello.data() + 4, sender);
  return hello;
}

std::optional<std::uint32_t> decode_hello(
    const std::uint8_t hello[kHelloBytes]) {
  if (get_u32(hello) != kHelloMagic) return std::nullopt;
  return get_u32(hello + 4);
}

ResilientChannel::ResilientChannel(ProcessId self, ProcessId peer, DialFn dial,
                                   RetryPolicy policy, Rng jitter_rng,
                                   std::unique_ptr<LinkFaultInjector> injector)
    : self_(self),
      peer_(peer),
      dial_(std::move(dial)),
      policy_(policy),
      rng_(jitter_rng),
      injector_(std::move(injector)) {
  MODUBFT_EXPECTS(dial_ != nullptr);
}

ResilientChannel::~ResilientChannel() {
  shutdown();
  join();
}

void ResilientChannel::start() {
  MODUBFT_EXPECTS(!worker_.joinable());
  worker_ = std::thread([this] { thread_main(); });
}

void ResilientChannel::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
}

void ResilientChannel::join() {
  if (worker_.joinable()) worker_.join();
}

bool ResilientChannel::enqueue(Bytes payload) {
  return enqueue(std::make_shared<const Bytes>(std::move(payload)));
}

bool ResilientChannel::enqueue(PayloadPtr payload) {
  MODUBFT_EXPECTS(payload != nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return false;
    if (queue_.size() >= policy_.max_queued_frames) {
      frames_dropped_.fetch_add(1);
      degraded_.store(true);
      return false;
    }
    queue_.push_back(QueuedFrame{std::move(payload), Clock::now()});
  }
  cv_.notify_one();
  return true;
}

ChannelStats ResilientChannel::stats() const {
  ChannelStats s;
  s.frames_sent = frames_sent_.load();
  s.bytes_sent = bytes_sent_.load();
  s.retransmits = retransmits_.load();
  s.reconnects = reconnects_.load();
  s.dial_failures = dial_failures_.load();
  s.frames_dropped = frames_dropped_.load();
  s.kills_injected = kills_injected_.load();
  s.truncates_injected = truncates_injected_.load();
  s.flips_injected = flips_injected_.load();
  s.delays_injected = delays_injected_.load();
  s.degraded = degraded_.load();
  return s;
}

void ResilientChannel::thread_main() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    const auto now = Clock::now();
    const bool backlog = !queue_.empty() || !unacked_.empty();
    if (fd_ < 0 && backlog && next_dial_ > now) {
      // Backoff gate: nothing to do until the next dial is allowed.
      cv_.wait_until(lock,
                     std::min(next_dial_, now + std::chrono::milliseconds(100)),
                     [this] { return stop_; });
    } else {
      // Idle (or connected): wake on new frames, or tick to drain acks.
      cv_.wait_for(lock, std::chrono::milliseconds(20),
                   [this] { return stop_ || !queue_.empty(); });
    }
    if (stop_) break;
    expire_stale_locked(lock);

    const bool have_work = !queue_.empty() || !unacked_.empty();
    if (fd_ < 0) {
      if (!have_work) continue;
      if (!try_connect(lock)) continue;
    }
    lock.unlock();
    const bool alive = drain_acks();
    lock.lock();
    if (!alive) {
      drop_connection();
      continue;
    }
    transmit_pending(lock);
  }
  drop_connection();
}

void ResilientChannel::expire_stale_locked(std::unique_lock<std::mutex>&) {
  // Only never-transmitted frames may be dropped: once a frame consumed a
  // sequence number the receiver will not accept anything past it, so
  // dropping it would wedge the link instead of degrading it.
  const auto now = Clock::now();
  while (!queue_.empty() && now - queue_.front().enqueued >
                                policy_.send_timeout) {
    queue_.pop_front();
    frames_dropped_.fetch_add(1);
    degraded_.store(true);
  }
}

bool ResilientChannel::try_connect(std::unique_lock<std::mutex>& lock) {
  if (Clock::now() < next_dial_) return false;
  lock.unlock();
  int fd = dial_();
  bool ok = false;
  std::uint64_t resume = 0;
  if (fd >= 0) {
    const Bytes hello = encode_hello(self_.value);
    ok = net_write_all(fd, hello.data(), hello.size());
    if (ok) {
      // Resume reply: the receiver's next expected sequence number.
      pollfd pfd{fd, POLLIN, 0};
      std::uint8_t buf[kAckBytes];
      std::size_t have = 0;
      const auto deadline = Clock::now() + policy_.handshake_timeout;
      while (ok && have < kAckBytes) {
        const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - Clock::now());
        if (left.count() <= 0 || ::poll(&pfd, 1, static_cast<int>(
                                                     left.count())) <= 0) {
          ok = false;
          break;
        }
        const ssize_t got = ::recv(fd, buf + have, kAckBytes - have, 0);
        if (got <= 0) {
          ok = false;
          break;
        }
        have += static_cast<std::size_t>(got);
      }
      if (ok) resume = get_u64(buf);
    }
  }
  lock.lock();
  if (stop_) {
    if (fd >= 0) ::close(fd);
    return false;
  }
  if (!ok) {
    if (fd >= 0) ::close(fd);
    dial_failures_.fetch_add(1);
    const std::uint32_t exp = std::min(consecutive_dial_failures_, 20u);
    ++consecutive_dial_failures_;
    double backoff_ms =
        static_cast<double>(policy_.base_backoff.count()) *
        std::pow(policy_.backoff_multiplier, static_cast<double>(exp));
    backoff_ms = std::min(
        backoff_ms, static_cast<double>(policy_.max_backoff.count()));
    backoff_ms *= 1.0 + policy_.jitter * (2.0 * rng_.next_double() - 1.0);
    next_dial_ = Clock::now() + std::chrono::microseconds(static_cast<
                     std::int64_t>(backoff_ms * 1000.0));
    return false;
  }
  consecutive_dial_failures_ = 0;
  if (ever_connected_) reconnects_.fetch_add(1);
  ever_connected_ = true;
  fd_ = fd;
  ack_partial_len_ = 0;
  // Trim everything the receiver already has; retransmit the rest.
  acked_ = std::min(std::max(acked_, resume), next_seq_);
  while (!unacked_.empty() && unacked_.front().seq < acked_) {
    unacked_.pop_front();
  }
  next_unsent_ = 0;
  return true;
}

void ResilientChannel::transmit_pending(std::unique_lock<std::mutex>& lock) {
  while (!queue_.empty() && unacked_.size() < policy_.max_unacked_frames) {
    QueuedFrame q = std::move(queue_.front());
    queue_.pop_front();
    UnackedFrame f;
    f.seq = next_seq_++;
    f.payload = std::move(q.payload);
    encode_frame_header(f.seq, *f.payload, f.header);
    unacked_.push_back(std::move(f));
  }
  lock.unlock();
  while (fd_ >= 0 && next_unsent_ < unacked_.size() && !stopping()) {
    UnackedFrame& f = unacked_[next_unsent_];
    const bool was_transmitted = f.transmitted;
    if (!write_frame(f)) {
      drop_connection();
      break;
    }
    if (was_transmitted) retransmits_.fetch_add(1);
    f.transmitted = true;
    ++next_unsent_;
    if (!drain_acks()) {
      drop_connection();
      break;
    }
  }
  lock.lock();
}

bool ResilientChannel::write_frame(UnackedFrame& frame) {
  const Bytes& payload = *frame.payload;
  const std::size_t wire_size = frame.wire_size();
  FrameFaultDecision d;
  if (injector_) d = injector_->next_attempt(wire_size);
  if (d.delay_us > 0) {
    delays_injected_.fetch_add(1);
    sleep_interruptible(std::chrono::microseconds(d.delay_us));
    if (stopping()) return false;
  }
  if (d.kill_before) {
    kills_injected_.fetch_add(1);
    return false;
  }
  if (d.truncate) {
    truncates_injected_.fetch_add(1);
    if (d.truncate_prefix > 0) {
      const std::size_t prefix =
          std::min<std::size_t>(d.truncate_prefix, wire_size);
      const std::size_t from_hdr =
          std::min<std::size_t>(prefix, kFrameHeaderBytes);
      if (net_write_all(fd_, frame.header, from_hdr) &&
          prefix > kFrameHeaderBytes) {
        net_write_all(fd_, payload.data(), prefix - kFrameHeaderBytes);
      }
    }
    return false;
  }
  if (d.flip || d.throttle_chunk > 0) {
    // Perturbed attempts materialize a private contiguous image: the
    // shared payload must never be mutated, and chaos configs are not
    // the path the copy elimination targets.
    Bytes img(frame.header, frame.header + kFrameHeaderBytes);
    img.insert(img.end(), payload.begin(), payload.end());
    if (d.flip) {
      flips_injected_.fetch_add(1);
      img[d.flip_offset] ^= static_cast<std::uint8_t>(
          1u << (d.flip_offset % 8));
    }
    if (d.throttle_chunk > 0) {
      std::size_t off = 0;
      while (off < img.size()) {
        const std::size_t n = std::min<std::size_t>(d.throttle_chunk,
                                                    img.size() - off);
        if (!net_write_all(fd_, img.data() + off, n)) return false;
        off += n;
      }
    } else if (!net_write_all(fd_, img.data(), img.size())) {
      return false;
    }
  } else if (!net_write2_all(fd_, frame.header, kFrameHeaderBytes,
                             payload.data(), payload.size())) {
    return false;
  }
  frames_sent_.fetch_add(1);
  bytes_sent_.fetch_add(wire_size);
  return true;
}

bool ResilientChannel::drain_acks() {
  if (fd_ < 0) return false;
  std::uint8_t buf[256];
  for (;;) {
    const ssize_t got = ::recv(fd_, buf, sizeof buf, MSG_DONTWAIT);
    if (got == 0) return false;  // receiver closed (likely CRC teardown)
    if (got < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    for (ssize_t i = 0; i < got; ++i) {
      ack_partial_[ack_partial_len_++] = buf[i];
      if (ack_partial_len_ == kAckBytes) {
        ack_partial_len_ = 0;
        acked_ = std::max(acked_, get_u64(ack_partial_));
      }
    }
  }
  while (!unacked_.empty() && unacked_.front().seq < acked_) {
    unacked_.pop_front();
    if (next_unsent_ > 0) --next_unsent_;
  }
  return true;
}

void ResilientChannel::drop_connection() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  ack_partial_len_ = 0;
  next_unsent_ = 0;
}

void ResilientChannel::sleep_interruptible(std::chrono::microseconds d) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, d, [this] { return stop_; });
}

bool ResilientChannel::stopping() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stop_;
}

}  // namespace modubft::transport
