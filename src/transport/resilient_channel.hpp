// Resilient directed link: re-establishes reliable FIFO over fallible TCP.
//
// One `ResilientChannel` owns the send side of a single directed link
// p_self → p_peer.  The protocols above assume reliable-FIFO channels; a
// raw TCP connection only provides that while it lives.  This layer makes
// the contract survive connection death, truncation and corruption:
//
//   * every frame carries a per-link sequence number and a CRC-32C over
//     header and payload;
//   * sent-but-unacknowledged frames stay in a bounded retransmit buffer;
//   * on any socket failure the channel redials with capped exponential
//     backoff plus jitter, replays the resume handshake (the receiver
//     answers with the next sequence number it expects), trims the buffer
//     and retransmits the rest;
//   * the receive side (in `TcpCluster`) suppresses duplicates and
//     enforces in-order delivery, so a frame is delivered exactly once and
//     in FIFO order no matter how many times it was transmitted;
//   * sends never block the caller: frames queue, and a frame that cannot
//     be transmitted within `send_timeout` is dropped and surfaced in the
//     channel stats (`frames_dropped`, `degraded`) instead of hanging the
//     protocol thread — an unreachable peer degrades into a crashed one,
//     which the consensus layer already tolerates via F.
//
// A `LinkFaultInjector` (optional) perturbs every transmission attempt, so
// chaos tests exercise exactly this machinery.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "transport/link_faults.hpp"

namespace modubft::transport {

/// First bytes on every connection: [magic][sender id], little-endian u32s.
inline constexpr std::uint32_t kHelloMagic = 0x4D42'4654u;  // "MBFT"
inline constexpr std::size_t kHelloBytes = 8;
/// Data frame header: [u32 payload len][u64 seq][u32 crc], little-endian.
/// The CRC covers len ‖ seq ‖ payload, so any corrupted header field or
/// payload byte fails verification (a corrupted len additionally desyncs
/// the stream — both cases tear the connection down and resume cleanly).
inline constexpr std::size_t kFrameHeaderBytes = 16;
/// Acknowledgement from receiver to sender: one little-endian u64 with the
/// next expected sequence number (cumulative).  The resume reply sent
/// right after the hello uses the same encoding.
inline constexpr std::size_t kAckBytes = 8;

struct FrameHeader {
  std::uint32_t len = 0;
  std::uint64_t seq = 0;
  std::uint32_t crc = 0;
};

/// Builds the full wire image (header + payload) for one frame.  The
/// reference encoder: tests compare against it byte for byte.  The hot
/// send path uses encode_frame_header + a gathered write instead — same
/// bytes on the wire, no contiguous copy.
Bytes encode_frame(std::uint64_t seq, const Bytes& payload);

/// Fills the 16 header bytes (len ‖ seq ‖ crc32c(len‖seq‖payload)) for a
/// frame whose payload will be written separately — the zero-copy
/// counterpart of encode_frame.
void encode_frame_header(std::uint64_t seq, const Bytes& payload,
                         std::uint8_t out[kFrameHeaderBytes]);

/// Decodes the 16 header bytes (no validation beyond field extraction).
FrameHeader decode_frame_header(const std::uint8_t hdr[kFrameHeaderBytes]);

/// Recomputes the CRC over len ‖ seq ‖ payload and compares.
bool verify_frame_crc(const FrameHeader& header, const Bytes& payload);

Bytes encode_hello(std::uint32_t sender);
/// Returns the sender id, or nullopt if the magic does not match.
std::optional<std::uint32_t> decode_hello(const std::uint8_t hello[kHelloBytes]);

/// Blocking loop around read(2) / send(2) until `len` bytes moved.
/// Both return false on EOF or error (the connection is done).
bool net_read_exact(int fd, void* buf, std::size_t len);
bool net_write_all(int fd, const void* buf, std::size_t len);

/// Gathered write of two ranges (header ‖ payload) in one syscall stream
/// via sendmsg — the wire bytes are identical to concatenating first.
bool net_write2_all(int fd, const void* a, std::size_t alen, const void* b,
                    std::size_t blen);

/// Reconnect/backoff/timeout policy shared by all links of a cluster.
struct RetryPolicy {
  std::chrono::milliseconds base_backoff{2};
  std::chrono::milliseconds max_backoff{200};
  double backoff_multiplier = 2.0;
  /// Uniform jitter of ± this fraction around the computed backoff.
  double jitter = 0.5;
  /// A queued frame not transmitted within this window is dropped (and
  /// accounted) instead of blocking the link forever.
  std::chrono::milliseconds send_timeout{5'000};
  /// Deadline for the resume reply after dialing.
  std::chrono::milliseconds handshake_timeout{2'000};
  std::size_t max_queued_frames = 8'192;
  std::size_t max_unacked_frames = 4'096;
  /// Receiver sends a cumulative ack every this many delivered frames.
  std::uint32_t ack_every = 16;
};

/// Snapshot of one channel's counters.
struct ChannelStats {
  std::uint64_t frames_sent = 0;   ///< frames fully written to a socket
  std::uint64_t bytes_sent = 0;    ///< wire bytes fully written
  std::uint64_t retransmits = 0;   ///< frames written more than once
  std::uint64_t reconnects = 0;    ///< successful re-dials after the first
  std::uint64_t dial_failures = 0; ///< failed dial or handshake attempts
  std::uint64_t frames_dropped = 0;///< expired in queue or queue overflow
  std::uint64_t kills_injected = 0;
  std::uint64_t truncates_injected = 0;
  std::uint64_t flips_injected = 0;
  std::uint64_t delays_injected = 0;
  bool degraded = false;           ///< at least one frame was dropped
};

class ResilientChannel {
 public:
  /// `dial` returns a connected socket to the peer (or -1); the channel
  /// owns the returned fd and performs the hello/resume handshake itself.
  using DialFn = std::function<int()>;

  ResilientChannel(ProcessId self, ProcessId peer, DialFn dial,
                   RetryPolicy policy, Rng jitter_rng,
                   std::unique_ptr<LinkFaultInjector> injector);
  ~ResilientChannel();

  ResilientChannel(const ResilientChannel&) = delete;
  ResilientChannel& operator=(const ResilientChannel&) = delete;

  void start();
  /// Signals the worker to finish; idempotent.  join() waits for it.
  void shutdown();
  void join();

  /// Shared immutable payload: a broadcast enqueues ONE allocation on all
  /// n−1 channels instead of copying the frame per recipient, and the
  /// retransmit buffer aliases it too (the wire header lives separately,
  /// see UnackedFrame).  Nobody mutates the pointee — fault injection
  /// that flips bytes materializes a private copy at write time.
  using PayloadPtr = std::shared_ptr<const Bytes>;

  /// Queues one payload for FIFO transmission.  Never blocks; returns
  /// false (and counts a drop) when the channel is stopped or full.
  bool enqueue(Bytes payload);
  bool enqueue(PayloadPtr payload);

  ChannelStats stats() const;

  ProcessId peer() const { return peer_; }

 private:
  struct QueuedFrame {
    PayloadPtr payload;
    std::chrono::steady_clock::time_point enqueued;
  };
  /// Retransmit-buffer entry: the 16 wire-header bytes live inline, the
  /// payload is shared with every other channel of the same broadcast.
  /// Together they ARE the frame — write_frame gathers them with one
  /// sendmsg, producing bytes identical to the old contiguous wire image.
  struct UnackedFrame {
    std::uint64_t seq = 0;
    std::uint8_t header[kFrameHeaderBytes] = {};
    PayloadPtr payload;
    bool transmitted = false;

    std::size_t wire_size() const {
      return kFrameHeaderBytes + (payload ? payload->size() : 0);
    }
  };

  void thread_main();
  void expire_stale_locked(std::unique_lock<std::mutex>& lock);
  bool try_connect(std::unique_lock<std::mutex>& lock);
  void transmit_pending(std::unique_lock<std::mutex>& lock);
  bool write_frame(UnackedFrame& frame);
  /// Reads whatever acks are available without blocking; trims the
  /// retransmit buffer.  Returns false when the connection died.
  bool drain_acks();
  void drop_connection();
  void sleep_interruptible(std::chrono::microseconds d);
  bool stopping() const;

  const ProcessId self_;
  const ProcessId peer_;
  const DialFn dial_;
  const RetryPolicy policy_;
  Rng rng_;
  std::unique_ptr<LinkFaultInjector> injector_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<QueuedFrame> queue_;
  bool stop_ = false;

  // Worker-thread state (no locking needed).
  std::thread worker_;
  int fd_ = -1;
  std::deque<UnackedFrame> unacked_;
  std::size_t next_unsent_ = 0;  ///< index into unacked_ for this connection
  std::uint64_t next_seq_ = 0;
  std::uint64_t acked_ = 0;
  std::uint32_t consecutive_dial_failures_ = 0;
  std::chrono::steady_clock::time_point next_dial_{};
  bool ever_connected_ = false;
  std::uint8_t ack_partial_[kAckBytes] = {};
  std::size_t ack_partial_len_ = 0;

  // Counters (atomics: written by worker and enqueue, read by stats()).
  std::atomic<std::uint64_t> frames_sent_{0}, bytes_sent_{0}, retransmits_{0},
      reconnects_{0}, dial_failures_{0}, frames_dropped_{0},
      kills_injected_{0}, truncates_injected_{0}, flips_injected_{0},
      delays_injected_{0};
  std::atomic<bool> degraded_{false};
};

}  // namespace modubft::transport
