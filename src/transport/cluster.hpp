// Threaded in-memory cluster: the "real concurrency" runtime.
//
// Runs the same Actor programs as the deterministic simulator, but each
// process lives on its own OS thread, messages travel through MPSC
// mailboxes, time is the wall clock, and interleavings are whatever the
// scheduler produces.  This is the deployment-shaped substrate: it
// validates that the protocols do not secretly depend on the simulator's
// determinism, and it exercises the locking/timer plumbing a real system
// needs.
//
// Channel guarantees match the model: reliable (in-process queues) and
// FIFO per ordered pair (senders push sequentially, mailboxes preserve
// per-sender order).  Crash injection drops a node silently at a chosen
// point in time.
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/ids.hpp"
#include "sim/actor.hpp"
#include "sim/simulation.hpp"
#include "transport/mailbox.hpp"

namespace modubft::transport {

struct ClusterConfig {
  std::uint32_t n = 0;
  std::uint64_t seed = 1;
  /// Wall-clock budget for run(); nodes still running afterwards are
  /// abandoned (their threads are joined after a close).
  std::chrono::milliseconds budget{10'000};
  /// Maximum deliveries drained from the mailbox into one Actor::on_batch
  /// dispatch.  1 restores strict one-message-at-a-time dispatch; the
  /// default keeps batches small enough that timers stay responsive.
  std::size_t max_batch = 64;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Installs the actor for `id`.  Call for every id before run().
  void set_actor(ProcessId id, std::unique_ptr<sim::Actor> actor);

  /// Schedules a silent halt of `id` after `after` of wall-clock run time.
  void crash_after(ProcessId id, std::chrono::microseconds after);

  /// Schedules a restart of a node previously given to crash_after: at
  /// `after` (from the run epoch, > the crash instant), `factory()` builds
  /// a FRESH actor that takes over the node — same id, same rng stream,
  /// empty timer set; deliveries that arrived during the outage are
  /// discarded.  One-shot: a restart whose deadline falls after the
  /// cluster began stopping (budget expiry / teardown) is abandoned, never
  /// a hang.
  void set_restart(ProcessId id, std::chrono::microseconds after,
                   std::function<std::unique_ptr<sim::Actor>()> factory);

  /// Optional observer invoked on every delivery, right before the
  /// receiving actor's on_message.  Calls are serialized by an internal
  /// mutex (they come from every node thread), so the tap itself needs no
  /// locking; `Delivery::payload` points at a copy made on the node thread
  /// *outside* that mutex, and is only valid for the call's duration.
  /// Times are µs since the run epoch — the same clock crash_after uses.
  void set_delivery_tap(std::function<void(const sim::Delivery&)> tap);

  /// Starts all node threads and blocks until every node stopped (or the
  /// budget expires).  Returns true iff all nodes stopped by themselves;
  /// on budget expiry the stragglers are reported via unstopped() and a
  /// warning log naming each culprit.
  bool run();

  bool stopped(ProcessId id) const;

  /// Nodes that had not stopped when the run() budget expired (empty after
  /// a clean run) — a hung node is a named test failure, not a silent
  /// budget expiry.
  std::vector<ProcessId> unstopped() const;

  /// Aggregate message counters, comparable field-for-field with
  /// sim::Simulation::stats().  events_executed counts actor callbacks
  /// (message + timer dispatches).
  sim::Stats stats() const;

  /// Wall-clock duration of the completed run.
  std::chrono::microseconds elapsed() const { return elapsed_; }

 private:
  struct TimerEntry {
    std::chrono::steady_clock::time_point due;
    std::uint64_t id;
  };

  struct Envelope {
    ProcessId from;
    Bytes payload;
    /// µs since the run epoch at push time (0 for pre-epoch pushes).
    SimTime sent_at = 0;
  };

  struct Node;
  class NodeContext;

  void node_main(Node& node);
  void node_pump(Node& node, NodeContext& ctx);
  SimTime since_epoch() const;
  void tap_delivery(const Envelope& env, ProcessId to);

  ClusterConfig config_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::thread> threads_;
  std::chrono::steady_clock::time_point epoch_{};
  std::chrono::microseconds elapsed_{0};
  std::vector<ProcessId> unstopped_;
  bool ran_ = false;

  struct AtomicStats {
    std::atomic<std::uint64_t> messages_sent{0};
    std::atomic<std::uint64_t> messages_delivered{0};
    std::atomic<std::uint64_t> bytes_sent{0};
    std::atomic<std::uint64_t> events_executed{0};
  };
  AtomicStats stats_;

  std::mutex tap_mu_;
  std::function<void(const sim::Delivery&)> tap_;
};

}  // namespace modubft::transport
