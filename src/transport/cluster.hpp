// Threaded in-memory cluster: the "real concurrency" runtime.
//
// Runs the same Actor programs as the deterministic simulator, but each
// process lives on its own OS thread, messages travel through MPSC
// mailboxes, time is the wall clock, and interleavings are whatever the
// scheduler produces.  This is the deployment-shaped substrate: it
// validates that the protocols do not secretly depend on the simulator's
// determinism, and it exercises the locking/timer plumbing a real system
// needs.
//
// Channel guarantees match the model: reliable (in-process queues) and
// FIFO per ordered pair (senders push sequentially, mailboxes preserve
// per-sender order).  Crash injection drops a node silently at a chosen
// point in time.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/ids.hpp"
#include "sim/actor.hpp"
#include "transport/mailbox.hpp"

namespace modubft::transport {

struct ClusterConfig {
  std::uint32_t n = 0;
  std::uint64_t seed = 1;
  /// Wall-clock budget for run(); nodes still running afterwards are
  /// abandoned (their threads are joined after a close).
  std::chrono::milliseconds budget{10'000};
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Installs the actor for `id`.  Call for every id before run().
  void set_actor(ProcessId id, std::unique_ptr<sim::Actor> actor);

  /// Schedules a silent halt of `id` after `after` of wall-clock run time.
  void crash_after(ProcessId id, std::chrono::microseconds after);

  /// Starts all node threads and blocks until every node stopped (or the
  /// budget expires).  Returns true iff all nodes stopped by themselves.
  bool run();

  bool stopped(ProcessId id) const;

  /// Wall-clock duration of the completed run.
  std::chrono::microseconds elapsed() const { return elapsed_; }

 private:
  struct TimerEntry {
    std::chrono::steady_clock::time_point due;
    std::uint64_t id;
  };

  struct Envelope {
    ProcessId from;
    Bytes payload;
  };

  struct Node;
  class NodeContext;

  void node_main(Node& node);

  ClusterConfig config_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::thread> threads_;
  std::chrono::steady_clock::time_point epoch_{};
  std::chrono::microseconds elapsed_{0};
  bool ran_ = false;
};

}  // namespace modubft::transport
