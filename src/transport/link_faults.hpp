// Deterministic link-fault scheduling for the TCP transport.
//
// A `LinkFaultPlan` turns a set of `faults::LinkFaultSpec` (the vocabulary,
// defined next to the process-fault taxonomy in `src/faults/`) plus a seed
// into one `LinkFaultInjector` per directed link.  Each injector owns an
// independent deterministic generator derived from (seed, from, to): given
// the same seed and the same sequence of transmission attempts, it
// produces the same fault schedule — which is what makes chaos runs
// replayable and the schedule unit-testable without sockets.
//
// The injector sits *below* the resilient channel's framing: it decides,
// per transmission attempt, whether the connection dies first, the frame
// is truncated or byte-flipped on the wire, and how the write is delayed
// or throttled.  Exactly one disruptive fault (kill > truncate > flip)
// fires per attempt; delay and throttle compose with any of them.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "faults/link_fault.hpp"

namespace modubft::transport {

/// What the injector decided for one transmission attempt.
struct FrameFaultDecision {
  bool kill_before = false;
  bool truncate = false;
  /// Number of wire bytes that still reach the peer when truncating.
  std::size_t truncate_prefix = 0;
  bool flip = false;
  /// Absolute offset of the flipped byte in the wire image.
  std::size_t flip_offset = 0;
  std::uint32_t delay_us = 0;
  /// 0 = write the frame in one piece.
  std::uint32_t throttle_chunk = 0;

  bool disruptive() const { return kill_before || truncate || flip; }
};

/// One scheduled fault, for audit and replay comparison.
struct LinkFaultEvent {
  std::uint64_t attempt = 0;
  faults::LinkFaultKind kind = faults::LinkFaultKind::kNone;
  /// kFlip: byte offset; kTruncate: prefix length; kDelay: microseconds.
  std::uint64_t detail = 0;

  bool operator==(const LinkFaultEvent&) const = default;
};

/// Per-directed-link fault source.  Not thread-safe: each link's sender
/// consults its own injector from one thread.
class LinkFaultInjector {
 public:
  LinkFaultInjector(std::vector<faults::LinkFaultSpec> specs, Rng rng);

  /// Decides the faults for the next transmission attempt of a frame whose
  /// wire image is `wire_len` bytes (headers included).
  FrameFaultDecision next_attempt(std::size_t wire_len);

  std::uint64_t attempts() const { return attempt_; }

  /// Every fault fired so far, in attempt order.  Two injectors built from
  /// the same (specs, seed, link) and driven through the same attempt
  /// sequence produce equal event logs.
  const std::vector<LinkFaultEvent>& events() const { return events_; }

 private:
  std::vector<faults::LinkFaultSpec> specs_;
  std::vector<std::uint64_t> random_faults_;  // per spec, against the cap
  std::unordered_set<std::uint64_t> kill_at_;
  Rng rng_;
  std::uint64_t attempt_ = 0;
  std::vector<LinkFaultEvent> events_;
};

/// Seed + specs → injectors for every directed link.
class LinkFaultPlan {
 public:
  LinkFaultPlan() = default;
  LinkFaultPlan(std::vector<faults::LinkFaultSpec> specs, std::uint64_t seed);

  bool empty() const { return specs_.empty(); }
  std::uint64_t seed() const { return seed_; }

  /// Builds the injector for link from → to; returns nullptr when no spec
  /// matches the link (the channel then skips injection entirely).
  std::unique_ptr<LinkFaultInjector> make_injector(ProcessId from,
                                                   ProcessId to) const;

  /// Convenience: a wildcard plan that deterministically kills every link
  /// at its first transmission attempt and adds `kill_prob` random kills —
  /// the chaos-test workhorse.
  static LinkFaultPlan kill_every_link(double kill_prob, std::uint64_t seed);

 private:
  std::vector<faults::LinkFaultSpec> specs_;
  std::uint64_t seed_ = 0;
};

}  // namespace modubft::transport
