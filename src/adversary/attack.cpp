#include "adversary/attack.hpp"

namespace modubft::adversary {

using faults::Behavior;
using faults::FaultSpec;

std::set<std::uint32_t> AttackSpec::attackers() const {
  std::set<std::uint32_t> out = fuzzed;
  for (const auto& spec : faults) out.insert(spec.who.value);
  return out;
}

bool AttackSpec::fits(std::uint32_t n, std::uint32_t f) const {
  if (n < min_n || f < min_f) return false;
  if (attackers().size() > f) return false;
  for (const auto& spec : faults) {
    if (spec.who.value >= n) return false;
    // Split-brain is hardwired to the round-1 coordinator.
    if (spec.behavior == Behavior::kSplitBrain && spec.who.value != 0)
      return false;
  }
  for (std::uint32_t id : fuzzed) {
    if (id >= n) return false;
  }
  return true;
}

namespace {

/// One process (index 1 — never the round-1 coordinator, so the honest
/// protocol still drives rounds) running a single Behavior.
AttackSpec behavior_attack(std::string name, std::string paper_class,
                           std::string description, Behavior behavior,
                           bool expect_detection, Round from_round = Round{1}) {
  AttackSpec a;
  a.name = std::move(name);
  a.paper_class = std::move(paper_class);
  a.description = std::move(description);
  FaultSpec spec;
  spec.who = ProcessId{1};
  spec.behavior = behavior;
  spec.from_round = from_round;
  a.faults.push_back(spec);
  a.expect_detection = expect_detection;
  return a;
}

AttackSpec fuzz_attack(std::string name, std::string description,
                       MutationSpec mutation) {
  AttackSpec a;
  a.name = std::move(name);
  a.paper_class = "wire corruption";
  a.description = std::move(description);
  a.fuzzed.insert(1);
  a.mutation = mutation;
  // Decoder/signature rejection is deterministic for garbage frames.
  a.expect_detection = true;
  return a;
}

}  // namespace

std::vector<AttackSpec> attack_catalog(std::uint32_t n, std::uint32_t f) {
  std::vector<AttackSpec> all;

  // --- control -----------------------------------------------------------
  {
    AttackSpec a;
    a.name = "none";
    a.paper_class = "control";
    a.description = "fault-free run; the auditor must stay silent";
    all.push_back(std::move(a));
  }

  // --- muteness failures (§2) -------------------------------------------
  {
    AttackSpec a = behavior_attack(
        "crash", "muteness", "process halts silently early in the run",
        Behavior::kCrash, false);
    a.faults[0].at = 5'000;  // µs after start: mid-preliminary-phase
    all.push_back(std::move(a));
  }
  all.push_back(behavior_attack("mute", "muteness",
                                "alive but stops sending from round 1 on",
                                Behavior::kMute, false));
  all.push_back(behavior_attack(
      "selective-mute", "muteness",
      "drops messages to the lower half of the group, talks to the rest",
      Behavior::kSelectiveMute, false));

  // --- value corruption --------------------------------------------------
  all.push_back(behavior_attack("corrupt-vector", "value corruption",
                                "corrupts the estimate vector in CURRENTs",
                                Behavior::kCorruptVector, true));
  all.push_back(behavior_attack("wrong-round", "value corruption",
                                "relabels round-r messages as round r+1",
                                Behavior::kWrongRound, true));
  all.push_back(behavior_attack(
      "future-round", "value corruption",
      "relabels messages five rounds ahead, flooding future-round buffers",
      Behavior::kFutureRound, true));
  all.push_back(behavior_attack(
      "lie-init", "value corruption",
      "proposes an irrelevant initial value (undetectable by design)",
      Behavior::kLieInit, false));

  // --- duplication / replay ---------------------------------------------
  all.push_back(behavior_attack("duplicate-current", "duplication",
                                "sends every CURRENT twice",
                                Behavior::kDuplicateCurrent, true));
  all.push_back(behavior_attack("duplicate-next", "duplication",
                                "sends every NEXT twice",
                                Behavior::kDuplicateNext, true));
  all.push_back(behavior_attack(
      "stale-replay", "duplication",
      "replays its first signed frame verbatim alongside later sends",
      Behavior::kStaleReplay, true));

  // --- spurious / substituted statements ---------------------------------
  all.push_back(behavior_attack(
      "spurious-current", "spurious statement",
      "broadcasts CURRENT although not the coordinator",
      Behavior::kSpuriousCurrent, true));
  all.push_back(behavior_attack("substitute-next", "substitution",
                                "sends NEXT where the program says CURRENT",
                                Behavior::kSubstituteNext, true));
  all.push_back(behavior_attack(
      "premature-decide", "substitution",
      "broadcasts DECIDE without a deciding quorum", Behavior::kPrematureDecide,
      true));

  // --- forged signatures --------------------------------------------------
  all.push_back(behavior_attack("bad-signature", "forged signature",
                                "flips a bit in outgoing signatures",
                                Behavior::kBadSignature, true));

  // --- corrupted certificates ---------------------------------------------
  all.push_back(behavior_attack("strip-certificate", "corrupted certificate",
                                "strips certificates from outgoing messages",
                                Behavior::kStripCertificate, true));
  all.push_back(behavior_attack(
      "truncate-cert", "corrupted certificate",
      "drops half the members from outgoing certificates",
      Behavior::kTruncateCert, true));
  all.push_back(behavior_attack(
      "replay-cert", "corrupted certificate",
      "attaches its first certificate to every later message",
      Behavior::kReplayCert, true));
  all.push_back(behavior_attack(
      "forge-cert", "corrupted certificate",
      "tampers a certificate member it cannot re-sign", Behavior::kForgeCert,
      true));

  // --- equivocation --------------------------------------------------------
  all.push_back(behavior_attack("equivocate", "equivocation",
                                "coordinator sends different vectors to "
                                "different halves of the group",
                                Behavior::kEquivocate, true));
  {
    AttackSpec a;
    a.name = "split-brain";
    a.paper_class = "equivocation";
    a.description =
        "round-1 coordinator certifies two different vectors, one per half";
    FaultSpec spec;
    spec.who = ProcessId{0};
    spec.behavior = Behavior::kSplitBrain;
    a.faults.push_back(spec);
    a.expect_detection = true;
    all.push_back(std::move(a));
  }

  // --- wire corruption (mutation fuzzing) ---------------------------------
  {
    MutationSpec m;
    m.bitflip_prob = 0.4;
    all.push_back(fuzz_attack("fuzz-bitflip",
                              "flips 1-4 bits in 40% of outgoing frames", m));
  }
  {
    MutationSpec m;
    m.truncate_prob = 0.4;
    all.push_back(
        fuzz_attack("fuzz-truncate", "truncates 40% of outgoing frames", m));
  }
  {
    MutationSpec m;
    m.splice_prob = 0.4;
    all.push_back(fuzz_attack(
        "fuzz-splice", "stomps a random window in 40% of outgoing frames", m));
  }
  {
    MutationSpec m;
    m.duplicate_prob = 0.3;
    m.reorder_prob = 0.3;
    AttackSpec a = fuzz_attack(
        "fuzz-reorder", "duplicates and reorders frames (FIFO violation)", m);
    // Authentic frames out of order: the state machine may or may not
    // object, but nothing here is a signature/decode failure.
    a.expect_detection = false;
    all.push_back(std::move(a));
  }
  {
    MutationSpec m;
    m.bitflip_prob = 0.2;
    m.truncate_prob = 0.1;
    m.splice_prob = 0.2;
    m.duplicate_prob = 0.15;
    m.reorder_prob = 0.15;
    all.push_back(fuzz_attack("fuzz-storm",
                              "all mutation classes at once, moderate rates",
                              m));
  }

  // --- coalitions (f ≥ 2) --------------------------------------------------
  {
    AttackSpec a;
    a.name = "coalition-equivocate-mute";
    a.paper_class = "coalition";
    a.description =
        "split-brain coordinator while a second attacker goes mute";
    FaultSpec sb;
    sb.who = ProcessId{0};
    sb.behavior = Behavior::kSplitBrain;
    a.faults.push_back(sb);
    FaultSpec mute;
    mute.who = ProcessId{1};
    mute.behavior = Behavior::kMute;
    a.faults.push_back(mute);
    a.min_f = 2;
    a.min_n = 6;
    a.expect_detection = true;
    all.push_back(std::move(a));
  }
  {
    AttackSpec a;
    a.name = "coalition-forge-fuzz";
    a.paper_class = "coalition";
    a.description =
        "one certificate forger plus one wire-fuzzed process";
    FaultSpec forge;
    forge.who = ProcessId{1};
    forge.behavior = Behavior::kForgeCert;
    a.faults.push_back(forge);
    a.fuzzed.insert(2);
    a.mutation.bitflip_prob = 0.3;
    a.mutation.truncate_prob = 0.1;
    a.min_f = 2;
    a.min_n = 6;
    a.expect_detection = true;
    all.push_back(std::move(a));
  }
  {
    AttackSpec a;
    a.name = "coalition-replay-pair";
    a.paper_class = "coalition";
    a.description =
        "two attackers replaying stale frames and stale certificates";
    FaultSpec stale;
    stale.who = ProcessId{1};
    stale.behavior = Behavior::kStaleReplay;
    a.faults.push_back(stale);
    FaultSpec cert;
    cert.who = ProcessId{2};
    cert.behavior = Behavior::kReplayCert;
    a.faults.push_back(cert);
    a.min_f = 2;
    a.min_n = 6;
    a.expect_detection = true;
    all.push_back(std::move(a));
  }

  std::vector<AttackSpec> fitting;
  for (auto& a : all) {
    if (a.fits(n, f)) fitting.push_back(std::move(a));
  }
  return fitting;
}

const AttackSpec* find_attack(const std::vector<AttackSpec>& catalog,
                              const std::string& name) {
  for (const auto& a : catalog) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

}  // namespace modubft::adversary
