// Wire-level mutation fuzzing: genuinely malformed bytes on real channels.
//
// The Byzantine wrappers (faults/byzantine.hpp) mutate *decoded* messages
// and re-sign them, so every hostile frame they emit is still grammatical.
// The fuzzer attacks one layer lower: it intercepts the encoded frames a
// wrapped process hands to the transport and applies seeded, deterministic
// byte-level mutations — bit flips, truncation, field splices, duplicates,
// reorders — so the decoder (`bft::decode_message` / `Reader`), the
// SignatureModule and the CertAnalyzer face input no honest encoder could
// produce.  The receiving stack must reject every such frame with a typed
// verdict (kMalformed / kBadSignature), never crash, never read past the
// buffer; the fuzz regression tests and the ASan/UBSan campaign pass hold
// it to that.
//
// Determinism: a WireMutator draws from its own Rng seeded by
// (scenario seed, salt, process id), so a failing (attack, substrate,
// seed) campaign cell replays byte-for-byte on the simulator.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "sim/actor.hpp"

namespace modubft::adversary {

/// Per-frame mutation probabilities.  All zero = pass-through.
struct MutationSpec {
  double bitflip_prob = 0;    // flip 1–4 random bits
  double truncate_prob = 0;   // cut the frame at a random point
  double splice_prob = 0;     // overwrite a random window with random bytes
  double duplicate_prob = 0;  // emit the frame twice
  double reorder_prob = 0;    // hold the frame, swap with the next one
  std::uint64_t salt = 0x5eed;

  bool any() const {
    return bitflip_prob > 0 || truncate_prob > 0 || splice_prob > 0 ||
           duplicate_prob > 0 || reorder_prob > 0;
  }
  std::string describe() const;
};

/// Applies at most one content mutation (bitflip / truncate / splice, in
/// that roll order) to a copy of `frame`.  Exposed for the fuzz regression
/// tests, which drive the decoder with exactly these mutations.
Bytes mutate_frame(const Bytes& frame, Rng& rng, const MutationSpec& spec);

/// Actor decorator that mutates the wrapped actor's outgoing frames.  The
/// wrapped process is genuinely running the protocol — its garbage is one
/// byte-level mutation away from authentic traffic, which is what makes
/// decoder hardening tests meaningful.  A wire-fuzzed process counts as
/// faulty for the paper's properties (BftScenarioConfig::assume_faulty).
class WireMutator final : public sim::Actor {
 public:
  WireMutator(std::unique_ptr<sim::Actor> inner, MutationSpec spec,
              std::uint64_t seed);

  void on_start(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, ProcessId from,
                  const Bytes& payload) override;
  void on_timer(sim::Context& ctx, std::uint64_t timer_id) override;

 private:
  class MutatingContext;

  std::unique_ptr<sim::Actor> inner_;
  MutationSpec spec_;
  Rng rng_;
  /// reorder: one held-back frame per destination, released (swapped)
  /// when the next frame for that destination is sent.
  std::map<ProcessId, Bytes> held_;
};

}  // namespace modubft::adversary
