// Recovery-under-attack cells: certified state transfer vs live adversaries.
//
// ISSUE 6's recovery path has exactly one trust anchor — the checkpoint
// certificate (bft/checkpoint_cert.hpp) — so the interesting attacks are
// the ones that try to route around it:
//
//   kForgedCheckpoint   The attacker signs CHECKPOINT votes for a digest
//                       of its own invention (valid signature, fabricated
//                       claim) and answers STATE_REQs with a wholly
//                       fabricated snapshot "certified" by whatever
//                       coalition keys the attack controls.  With ≤ f
//                       attackers the forged certificate can never reach
//                       2f+1 distinct signers, so a correct recoverer must
//                       reject it and recover from honest responders.
//   kCorruptStateResp   The attacker relays its genuine replica's
//                       STATE_RESP frames but stomps a byte window in each
//                       body: truncated/spliced snapshots, flipped digest
//                       bytes, mangled suffix entries.  The digest +
//                       certificate check must reject every such frame
//                       without UB (the decode fuzzer covers the same
//                       surface offline).
//
// A cell = (attack, substrate, seed): one SMR run with checkpointing on,
// one victim killed and restarted mid-run, and the attack spliced under
// the attacker replicas via SmrScenarioConfig::wrap_actor.  The cell
// passes iff the run terminates cleanly, the victim rejoins via verified
// state transfer, and the post-run store audit finds no violation.
//
// The negative control runs the harness against a deliberately broken
// configuration — every peer forges, and the victim installs the first
// STATE_RESP *without* verification (recovery_trust_unverified, a switch
// no correct build sets) — and must flag kRecoveredStoreMismatch.  A
// harness that cannot catch the planted violation proves nothing when it
// reports zero violations elsewhere.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "adversary/auditor.hpp"
#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "crypto/sha256.hpp"
#include "crypto/signature.hpp"
#include "faults/scenario.hpp"
#include "runtime/substrate.hpp"
#include "sim/actor.hpp"

namespace modubft::adversary {

enum class RecoveryAttackKind : std::uint8_t {
  kNone = 0,
  kForgedCheckpoint,
  kCorruptStateResp,
};

const char* recovery_attack_name(RecoveryAttackKind kind);

/// The digest a forging attacker votes for at `slot` — deterministic so a
/// coalition of forgers endorses one consistent lie (the strongest form of
/// the attack: inconsistent forgeries can never share a certificate).
crypto::Digest forged_checkpoint_digest(std::uint64_t slot);

/// A complete fabricated STATE_RESP control frame: a snapshot that exists
/// on no correct replica, claimed at `claim_slot`, "certified" by the
/// coalition's signatures.  Exposed for the unit tests, which feed it to
/// RecoveryModule directly and assert rejection.
Bytes forged_state_resp(std::uint64_t claim_slot,
                        const std::vector<const crypto::Signer*>& coalition);

/// Per-attacker knobs for RecoveryAttacker.
struct RecoveryAttackerConfig {
  RecoveryAttackKind kind = RecoveryAttackKind::kNone;
  /// Slot the fabricated snapshot claims (pick the run's last slot so the
  /// forged state always outbids every honest response).
  std::uint64_t claim_slot = 0;
  std::uint64_t seed = 1;
};

/// Actor decorator that attacks ONLY the recovery control channel: frames
/// whose envelope slot is smr::kControlSlot.  Consensus traffic passes
/// through untouched — the wrapped replica keeps committing correctly, so
/// the attack is invisible until a checkpoint or state transfer is in
/// flight (exactly the adversary the certificate discipline must defeat).
class RecoveryAttacker final : public sim::Actor {
 public:
  /// `self` signs the forged votes (the attacker legitimately holds its
  /// own key); `coalition` signs the fabricated certificate (every key the
  /// attack controls — ≤ f of them in a sound cell, all-but-victim in the
  /// negative control).
  RecoveryAttacker(std::unique_ptr<sim::Actor> inner,
                   RecoveryAttackerConfig config, const crypto::Signer* self,
                   std::vector<const crypto::Signer*> coalition);

  void on_start(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, ProcessId from,
                  const Bytes& payload) override;
  void on_timer(sim::Context& ctx, std::uint64_t timer_id) override;

 private:
  class AttackContext;

  /// Returns the frame to put on the wire in place of `payload`.
  Bytes attack_frame(const Bytes& payload);

  std::unique_ptr<sim::Actor> inner_;
  RecoveryAttackerConfig config_;
  const crypto::Signer* self_;
  Rng rng_;
  Bytes forged_resp_;  // cached fabricated STATE_RESP frame
};

// ---------------------------------------------------------------- cells

struct RecoveryCellConfig {
  RecoveryAttackKind attack = RecoveryAttackKind::kForgedCheckpoint;
  runtime::Backend substrate = runtime::Backend::kSim;
  smr::Backend backend = smr::Backend::kByzantine;
  std::uint64_t seed = 1;
  std::uint32_t n = 4;
  std::uint32_t f = 1;
  /// Synthetic workload size (puts/deletes cycling over 8 keys).
  std::uint32_t commands = 60;
  std::uint32_t window = 4;
  std::uint32_t batch = 2;
  std::uint64_t checkpoint_interval = 4;
  /// The replica killed and restarted mid-run.
  std::uint32_t victim = 2;
  /// Replicas running the attack (must exclude the victim; ≤ f for a
  /// sound cell).
  std::set<std::uint32_t> attackers{1};
  /// Kill/restart instants (µs); 0 = substrate-appropriate default.
  SimTime kill_at = 0;
  SimTime restart_at = 0;
  std::chrono::milliseconds budget{20'000};
};

struct RecoveryCellOutcome {
  faults::SmrScenarioResult result;
  std::vector<Violation> violations;
  /// The victim rejoined via verified state transfer.
  bool recovered = false;
  /// clean run ∧ all slots committed ∧ recovered ∧ zero violations.
  bool pass = false;
  std::string detail;
};

RecoveryCellOutcome run_recovery_cell(const RecoveryCellConfig& config);

/// Store audit behind every cell: each restarted replica must (a) have
/// installed verified state and (b) end with the store that at least
/// `quorum` correct replicas share.  `expected` overrides the quorum store
/// (the negative control supplies the honest baseline, since in that
/// configuration no correct quorum exists to vote).  Returns
/// kRecoveredStoreMismatch violations; empty = invariant holds.
std::vector<Violation> audit_recovered_stores(
    const faults::SmrScenarioResult& result,
    const std::set<std::uint32_t>& restarted, std::uint32_t quorum,
    const std::map<std::string, std::string>* expected = nullptr);

// ----------------------------------------------------------- control

struct RecoveryControlOutcome {
  /// The planted violation was flagged (the harness works).
  bool flagged = false;
  std::vector<Violation> violations;
  /// Store the victim actually installed (forged in a working control).
  std::map<std::string, std::string> installed;
};

/// Negative control for the recovery audit: every peer forges, the victim
/// installs unverified state, and audit_recovered_stores must flag the
/// mismatch against an honest baseline run of the same cell.
RecoveryControlOutcome run_recovery_negative_control(
    std::uint64_t seed, runtime::Backend substrate);

/// One-line JSON rendering for logs and campaign reports.
std::string to_json(const RecoveryCellOutcome& outcome);

}  // namespace modubft::adversary
