#include "adversary/broken_double.hpp"

#include <utility>

#include "bft/message.hpp"
#include "common/check.hpp"

namespace modubft::adversary {

BrokenConsensus::BrokenConsensus(std::uint32_t n, consensus::Value proposal,
                                 const crypto::Signer* signer,
                                 consensus::VectorDecideFn on_decide)
    : n_(n),
      proposal_(proposal),
      signer_(signer),
      on_decide_(std::move(on_decide)) {
  MODUBFT_EXPECTS(signer_ != nullptr);
}

void BrokenConsensus::on_start(sim::Context& ctx) {
  // Divergent by construction: only this process's entry is set, and it is
  // salted with the process index so no two vectors are equal.
  bft::VectorValue vect(n_, std::nullopt);
  const std::uint32_t self = ctx.id().value;
  vect[self] = proposal_ + self;

  bft::SignedMessage decide;
  decide.core.kind = bft::BftKind::kDecide;
  decide.core.sender = ctx.id();
  decide.core.round = Round{1};
  decide.core.est = vect;
  // Empty certificate: the signature is genuine, the justification absent.
  decide.sig = signer_->sign(bft::signing_bytes(decide.core, decide.cert));
  ctx.broadcast(bft::encode_message(decide));

  if (on_decide_) {
    on_decide_(ctx.id(),
               consensus::VectorDecision{std::move(vect), Round{1}, ctx.now()});
  }
  ctx.stop();
}

void BrokenConsensus::on_message(sim::Context&, ProcessId, const Bytes&) {}

}  // namespace modubft::adversary
