#include "adversary/campaign.hpp"

#include <map>
#include <mutex>
#include <sstream>
#include <utility>

#include "adversary/broken_double.hpp"
#include "adversary/fuzzer.hpp"
#include "crypto/hmac_signer.hpp"
#include "faults/scenario.hpp"

namespace modubft::adversary {

namespace {

/// Mixes the cell seed with a process id for per-mutator streams.
std::uint64_t mutator_seed(std::uint64_t seed, std::uint32_t id) {
  return seed * 1000003ull + id;
}

faults::BftScenarioConfig cell_scenario_config(
    std::uint32_t n, std::uint32_t f, const AttackSpec& attack,
    runtime::Backend substrate, std::uint64_t seed,
    std::chrono::milliseconds budget) {
  faults::BftScenarioConfig cfg;
  cfg.n = n;
  cfg.f = f;
  cfg.seed = seed;
  cfg.substrate = substrate;
  cfg.budget = budget;
  cfg.faults = attack.faults;
  if (!attack.fuzzed.empty() && attack.mutation.any()) {
    const MutationSpec mutation = attack.mutation;
    const std::set<std::uint32_t> fuzzed = attack.fuzzed;
    cfg.wrap_actor = [mutation, fuzzed, seed](ProcessId id,
                                              std::unique_ptr<sim::Actor> a)
        -> std::unique_ptr<sim::Actor> {
      if (fuzzed.count(id.value) == 0) return a;
      return std::make_unique<WireMutator>(std::move(a), mutation,
                                           mutator_seed(seed, id.value));
    };
    cfg.assume_faulty = attack.fuzzed;
  }
  return cfg;
}

}  // namespace

CellOutcome run_attack_cell(std::uint32_t n, std::uint32_t f,
                            const AttackSpec& attack,
                            runtime::Backend substrate, std::uint64_t seed,
                            std::chrono::milliseconds budget) {
  // The auditor replicates the run's deterministic key material — same
  // scheme, same (n, seed) — so it verifies with the group's real keys
  // while sharing no state with the processes.
  crypto::SignatureSystem keys = crypto::HmacScheme{}.make_system(n, seed);
  SafetyAuditor auditor(AuditorConfig{n, f, keys.verifier});

  faults::BftScenarioConfig cfg =
      cell_scenario_config(n, f, attack, substrate, seed, budget);
  cfg.delivery_tap = [&auditor](const sim::Delivery& d) { auditor.observe(d); };

  const faults::BftScenarioResult result = faults::run_bft_scenario(cfg);

  AuditEvidence evidence;
  evidence.correct = result.correct;
  evidence.attackers = attack.attackers();
  for (const auto& [i, d] : result.decisions) {
    if (result.correct.count(i)) evidence.decisions.emplace(i, d);
  }
  evidence.declared_faulty = result.declared_faulty;

  CellOutcome cell;
  cell.attack = attack.name;
  cell.substrate = substrate;
  cell.seed = seed;
  cell.clean = result.clean;
  cell.termination = result.termination;
  cell.agreement = result.agreement;
  cell.vector_validity = result.vector_validity;
  cell.detectors_reliable = result.detectors_reliable;
  cell.audit = auditor.finish(evidence);
  cell.pass = cell.audit.ok && cell.termination && cell.agreement &&
              cell.vector_validity && cell.detectors_reliable;
  return cell;
}

AuditReport run_negative_control(std::uint32_t n, std::uint32_t f,
                                 std::uint64_t seed) {
  crypto::SignatureSystem keys = crypto::HmacScheme{}.make_system(n, seed);
  SafetyAuditor auditor(AuditorConfig{n, f, keys.verifier});

  std::mutex mu;
  std::map<std::uint32_t, consensus::VectorDecision> decisions;

  faults::BftScenarioConfig cfg;
  cfg.n = n;
  cfg.f = f;
  cfg.seed = seed;
  cfg.substrate = runtime::Backend::kSim;
  cfg.delivery_tap = [&auditor](const sim::Delivery& d) { auditor.observe(d); };
  // Replace every process with the broken double.  All ids go into
  // assume_faulty because the scenario's own evaluation reads BftProcess
  // internals of "correct" processes — which no longer exist.
  for (std::uint32_t i = 0; i < n; ++i) cfg.assume_faulty.insert(i);
  cfg.wrap_actor = [&](ProcessId id, std::unique_ptr<sim::Actor>)
      -> std::unique_ptr<sim::Actor> {
    return std::make_unique<BrokenConsensus>(
        n, 1000 + id.value, keys.signers[id.value].get(),
        [&mu, &decisions](ProcessId p, const consensus::VectorDecision& d) {
          std::lock_guard<std::mutex> lock(mu);
          decisions.emplace(p.value, d);
        });
  };
  (void)faults::run_bft_scenario(cfg);

  // The audit treats every process as correct: the double *is* the
  // protocol under test here, and its divergent uncertified decisions
  // must light up the report.
  AuditEvidence evidence;
  for (std::uint32_t i = 0; i < n; ++i) evidence.correct.insert(i);
  evidence.decisions = std::move(decisions);
  return auditor.finish(evidence);
}

AttackSpec minimize_attack(const AttackSpec& failing,
                           const std::function<bool(const AttackSpec&)>&
                               still_fails) {
  AttackSpec best = failing;
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    // Drop coalition faults one at a time.
    for (std::size_t i = 0; i < best.faults.size(); ++i) {
      AttackSpec candidate = best;
      candidate.faults.erase(candidate.faults.begin() +
                             static_cast<std::ptrdiff_t>(i));
      if (still_fails(candidate)) {
        best = std::move(candidate);
        shrunk = true;
        break;
      }
    }
    if (shrunk) continue;
    // Un-fuzz processes one at a time.
    for (std::uint32_t id : best.fuzzed) {
      AttackSpec candidate = best;
      candidate.fuzzed.erase(id);
      if (candidate.fuzzed.empty()) candidate.mutation = MutationSpec{};
      if (still_fails(candidate)) {
        best = std::move(candidate);
        shrunk = true;
        break;
      }
    }
    if (shrunk) continue;
    // Zero mutation rates one at a time.
    double MutationSpec::* rates[] = {
        &MutationSpec::bitflip_prob, &MutationSpec::truncate_prob,
        &MutationSpec::splice_prob, &MutationSpec::duplicate_prob,
        &MutationSpec::reorder_prob};
    for (auto rate : rates) {
      if (best.mutation.*rate == 0) continue;
      AttackSpec candidate = best;
      candidate.mutation.*rate = 0;
      if (still_fails(candidate)) {
        best = std::move(candidate);
        shrunk = true;
        break;
      }
    }
  }
  return best;
}

std::string describe_attack(const AttackSpec& attack) {
  std::ostringstream os;
  os << attack.name << ": faults=[";
  for (std::size_t i = 0; i < attack.faults.size(); ++i) {
    if (i) os << ",";
    os << faults::behavior_name(attack.faults[i].behavior) << "@p"
       << (attack.faults[i].who.value + 1);
  }
  os << "] fuzzed={";
  bool first = true;
  for (std::uint32_t id : attack.fuzzed) {
    if (!first) os << ",";
    first = false;
    os << "p" << (id + 1);
  }
  os << "}";
  if (attack.mutation.any()) os << " mutation(" << attack.mutation.describe()
                                << ")";
  return os.str();
}

CampaignReport run_campaign(const CampaignConfig& config) {
  CampaignReport report;
  report.n = config.n;
  report.f = config.f;

  const std::vector<AttackSpec> catalog =
      attack_catalog(config.n, config.f);
  std::vector<const AttackSpec*> selected;
  if (config.attacks.empty()) {
    for (const AttackSpec& a : catalog) selected.push_back(&a);
  } else {
    for (const std::string& name : config.attacks) {
      const AttackSpec* a = find_attack(catalog, name);
      if (a != nullptr) selected.push_back(a);
    }
  }

  for (const AttackSpec* attack : selected) {
    for (runtime::Backend substrate : config.substrates) {
      for (std::uint32_t s = 0; s < config.seeds; ++s) {
        const std::uint64_t seed = config.base_seed + s;
        CellOutcome cell = run_attack_cell(config.n, config.f, *attack,
                                           substrate, seed, config.budget);
        ++report.cells_run;
        if (!cell.pass) {
          ++report.cells_failed;
          if (config.minimize_failures) {
            const AttackSpec minimized = minimize_attack(
                *attack, [&](const AttackSpec& candidate) {
                  return !run_attack_cell(config.n, config.f, candidate,
                                          substrate, seed, config.budget)
                              .pass;
                });
            cell.minimized = describe_attack(minimized);
          }
        }
        report.cells.push_back(std::move(cell));
      }
    }
  }

  if (config.negative_control) {
    report.negative_control_ran = true;
    const AuditReport audit =
        run_negative_control(config.n, config.f, config.base_seed);
    report.negative_control_flagged = !audit.ok;
    for (const Violation& v : audit.violations) {
      report.negative_control_kinds.push_back(violation_name(v.kind));
    }
  }

  report.ok = report.cells_failed == 0 &&
              (!report.negative_control_ran || report.negative_control_flagged);
  return report;
}

std::string to_json(const CampaignConfig& config,
                    const CampaignReport& report) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"campaign\": {\"n\": " << report.n << ", \"f\": " << report.f
     << ", \"seeds\": " << config.seeds
     << ", \"base_seed\": " << config.base_seed << ", \"substrates\": [";
  for (std::size_t i = 0; i < config.substrates.size(); ++i) {
    if (i) os << ", ";
    os << "\"" << runtime::backend_name(config.substrates[i]) << "\"";
  }
  os << "]},\n";
  os << "  \"cells\": [\n";
  for (std::size_t i = 0; i < report.cells.size(); ++i) {
    const CellOutcome& c = report.cells[i];
    os << "    {\"attack\": \"" << c.attack << "\", \"substrate\": \""
       << runtime::backend_name(c.substrate) << "\", \"seed\": " << c.seed
       << ", \"pass\": " << (c.pass ? "true" : "false")
       << ", \"termination\": " << (c.termination ? "true" : "false")
       << ", \"agreement\": " << (c.agreement ? "true" : "false")
       << ", \"vector_validity\": " << (c.vector_validity ? "true" : "false")
       << ", \"detectors_reliable\": "
       << (c.detectors_reliable ? "true" : "false")
       << ", \"audit\": " << to_json(c.audit);
    if (!c.minimized.empty()) os << ", \"minimized\": \"" << c.minimized
                                 << "\"";
    os << "}";
    if (i + 1 < report.cells.size()) os << ",";
    os << "\n";
  }
  os << "  ],\n";
  os << "  \"summary\": {\"cells_run\": " << report.cells_run
     << ", \"cells_failed\": " << report.cells_failed;
  if (report.negative_control_ran) {
    os << ", \"negative_control_flagged\": "
       << (report.negative_control_flagged ? "true" : "false")
       << ", \"negative_control_kinds\": [";
    for (std::size_t i = 0; i < report.negative_control_kinds.size(); ++i) {
      if (i) os << ", ";
      os << "\"" << report.negative_control_kinds[i] << "\"";
    }
    os << "]";
  }
  os << ", \"ok\": " << (report.ok ? "true" : "false") << "}\n";
  os << "}\n";
  return os.str();
}

}  // namespace modubft::adversary
