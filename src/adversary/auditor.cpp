#include "adversary/auditor.hpp"

#include <algorithm>
#include <sstream>

namespace modubft::adversary {

namespace {

/// A flooding attacker must not exhaust the auditor's memory: conflict
/// evidence needs two distinct cores, a few more help diagnostics.
constexpr std::size_t kMaxCoresPerKey = 8;
/// DECIDE frames kept for certificate justification.  A run produces one
/// certified DECIDE per decider (plus attacker noise); the cap is far
/// above that and exists only as a flood guard.
constexpr std::size_t kMaxDecides = 4096;

std::string render_vector(const bft::VectorValue& v) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) os << ",";
    if (v[i]) {
      os << *v[i];
    } else {
      os << "null";
    }
  }
  os << "]";
  return os.str();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

const char* violation_name(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kDisagreement: return "disagreement";
    case ViolationKind::kUncertifiedDecision: return "uncertified-decision";
    case ViolationKind::kFalseConviction: return "false-conviction";
    case ViolationKind::kCorrectEquivocation: return "correct-equivocation";
    case ViolationKind::kUndetectedHarmfulEquivocation:
      return "undetected-harmful-equivocation";
    case ViolationKind::kRecoveredStoreMismatch:
      return "recovered-store-mismatch";
    case ViolationKind::kClientReplyMismatch:
      return "client-reply-mismatch";
  }
  return "?";
}

SafetyAuditor::SafetyAuditor(AuditorConfig config)
    : config_(config),
      analyzer_(config.n, config.n - config.f, config.verifier) {}

void SafetyAuditor::observe(const sim::Delivery& delivery) {
  if (delivery.payload == nullptr) return;
  // Decode before taking the lock: the payload is only valid for this
  // call, but decoding touches no shared state and is the expensive part.
  bft::DecodeOutcome out = bft::try_decode_message(*delivery.payload);

  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.frames;
  if (!out) {
    ++stats_.undecodable;
    return;
  }
  // Only signature-verified frames count as evidence: an unverifiable
  // frame could have been fabricated by anyone (including the fuzzer) and
  // pins nothing on the process named in its sender field.
  if (out.msg.core.sender.value >= config_.n ||
      !analyzer_.signature_ok(out.msg)) {
    ++stats_.bad_signature;
    return;
  }

  const bft::MessageCore& core = out.msg.core;
  const StatementKey key{core.sender.value, core.kind, core.round.value};
  auto& cores = statements_[key];
  const bool seen = std::any_of(cores.begin(), cores.end(),
                                [&](const bft::MessageCore& c) {
                                  return c == core;
                                });
  if (!seen && cores.size() < kMaxCoresPerKey) {
    cores.push_back(core);
    if (cores.size() == 2) ++stats_.equivocations;
  }

  if (core.kind == bft::BftKind::kDecide) {
    ++stats_.decide_frames;
    if (decides_.size() < kMaxDecides) decides_.push_back(out.msg);
  } else if (core.kind == bft::BftKind::kCurrent &&
             analyzer_.current_wf(out.msg)) {
    ++stats_.wf_currents;
    if (wf_currents_.size() < kMaxDecides) {
      wf_currents_[{core.round.value, core.est}].insert(core.sender.value);
    }
  }
}

AuditReport SafetyAuditor::finish(const AuditEvidence& evidence) const {
  std::lock_guard<std::mutex> lock(mu_);
  AuditReport report;
  report.stats = stats_;

  // 1. Agreement across correct deciders.
  const bft::VectorValue* first = nullptr;
  std::uint32_t first_id = 0;
  bool agreement = true;
  for (const auto& [id, decision] : evidence.decisions) {
    if (evidence.correct.count(id) == 0) continue;
    if (first == nullptr) {
      first = &decision.entries;
      first_id = id;
    } else if (*first != decision.entries) {
      agreement = false;
      report.violations.push_back(
          {ViolationKind::kDisagreement,
           "p" + std::to_string(id + 1) + " decided " +
               render_vector(decision.entries) + " but p" +
               std::to_string(first_id + 1) + " decided " +
               render_vector(*first)});
    }
  }

  // 2. Every decided vector is justified by wire evidence — a well-formed
  //    DECIDE certificate, or a quorum of well-formed CURRENTs carrying it
  //    in one round (the quorum decision path: with stop-on-decide no
  //    DECIDE may ever be delivered).  Checked per distinct vector: a
  //    decider's own DECIDE broadcast may legitimately reach nobody.
  std::vector<const bft::VectorValue*> checked;
  for (const auto& [id, decision] : evidence.decisions) {
    if (evidence.correct.count(id) == 0) continue;
    const bool done = std::any_of(checked.begin(), checked.end(),
                                  [&](const bft::VectorValue* v) {
                                    return *v == decision.entries;
                                  });
    if (done) continue;
    checked.push_back(&decision.entries);
    bool certified = false;
    for (const bft::SignedMessage& frame : decides_) {
      if (frame.core.est != decision.entries) continue;
      if (analyzer_.decide_wf(frame)) {
        certified = true;
        break;
      }
    }
    if (!certified) {
      for (const auto& [key, senders] : wf_currents_) {
        if (key.second == decision.entries &&
            senders.size() >= analyzer_.quorum()) {
          certified = true;
          break;
        }
      }
    }
    if (!certified) {
      report.violations.push_back(
          {ViolationKind::kUncertifiedDecision,
           "no well-formed DECIDE certificate on the wire for " +
               render_vector(decision.entries) + " decided by p" +
               std::to_string(id + 1)});
    }
  }

  // 3. Detector reliability: no correct process convicted.
  for (std::uint32_t id : evidence.declared_faulty) {
    if (evidence.correct.count(id)) {
      report.violations.push_back(
          {ViolationKind::kFalseConviction,
           "correct p" + std::to_string(id + 1) +
               " appears in a correct process's faulty set"});
    }
  }

  // 4/5. Equivocations: fatal from a correct process; from an attacker
  //      they must be detected or harmless.
  for (const auto& [key, cores] : statements_) {
    if (cores.size() < 2) continue;
    const std::string who = "p" + std::to_string(key.sender + 1);
    const std::string what = std::string(bft::kind_name(key.kind)) +
                             " r" + std::to_string(key.round);
    if (evidence.correct.count(key.sender)) {
      report.violations.push_back(
          {ViolationKind::kCorrectEquivocation,
           who + " (correct) signed " + std::to_string(cores.size()) +
               " conflicting " + what + " statements"});
    } else if (evidence.attackers.count(key.sender) &&
               evidence.declared_faulty.count(key.sender) == 0 &&
               !agreement) {
      report.violations.push_back(
          {ViolationKind::kUndetectedHarmfulEquivocation,
           who + " equivocated on " + what +
               ", was not detected, and agreement broke"});
    }
  }

  report.ok = report.violations.empty();
  return report;
}

std::string to_json(const AuditReport& report) {
  std::ostringstream os;
  os << "{\"ok\":" << (report.ok ? "true" : "false")
     << ",\"frames\":" << report.stats.frames
     << ",\"undecodable\":" << report.stats.undecodable
     << ",\"bad_signature\":" << report.stats.bad_signature
     << ",\"decide_frames\":" << report.stats.decide_frames
     << ",\"wf_currents\":" << report.stats.wf_currents
     << ",\"equivocations\":" << report.stats.equivocations
     << ",\"violations\":[";
  for (std::size_t i = 0; i < report.violations.size(); ++i) {
    const Violation& v = report.violations[i];
    if (i) os << ",";
    os << "{\"kind\":\"" << violation_name(v.kind) << "\",\"detail\":\""
       << json_escape(v.detail) << "\"}";
  }
  os << "]}";
  return os.str();
}

}  // namespace modubft::adversary
