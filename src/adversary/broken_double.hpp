// Deliberately unsafe protocol double — the auditor's negative control.
//
// A safety auditor that never fires might be correct, or might be checking
// nothing.  BrokenConsensus settles that: it is a "consensus" protocol with
// the signing discipline of the real one (frames are grammatical
// SignedMessages under genuine keys) but none of its safety — every
// process immediately "decides" its own divergent vector and broadcasts an
// uncertified DECIDE.  Running the campaign against it MUST produce
// kDisagreement and kUncertifiedDecision violations; the adversary tests
// assert exactly that, so a silently-toothless auditor is a failing test,
// not a green run.
#pragma once

#include <memory>

#include "consensus/value.hpp"
#include "crypto/signature.hpp"
#include "sim/actor.hpp"

namespace modubft::adversary {

/// Broadcasts a signed-but-uncertified DECIDE for a per-process divergent
/// vector, reports it as this process's decision, and stops.
class BrokenConsensus final : public sim::Actor {
 public:
  BrokenConsensus(std::uint32_t n, consensus::Value proposal,
                  const crypto::Signer* signer,
                  consensus::VectorDecideFn on_decide);

  void on_start(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, ProcessId from,
                  const Bytes& payload) override;

 private:
  std::uint32_t n_;
  consensus::Value proposal_;
  const crypto::Signer* signer_;
  consensus::VectorDecideFn on_decide_;
};

}  // namespace modubft::adversary
