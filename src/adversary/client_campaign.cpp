#include "adversary/client_campaign.hpp"

#include <algorithm>
#include <exception>
#include <sstream>
#include <utility>

#include "common/check.hpp"
#include "common/serial.hpp"
#include "smr/checkpoint.hpp"
#include "smr/command.hpp"

namespace modubft::adversary {

namespace {

/// True iff the frame rides the reserved control slot.
bool is_control_frame(const Bytes& payload) {
  if (payload.size() < 9) return false;
  for (std::size_t i = 0; i < 8; ++i) {
    if (payload[i] != 0xFF) return false;
  }
  return true;
}

std::string render_who(std::uint32_t id) { return "p" + std::to_string(id + 1); }

std::string render_cmd(std::uint64_t id) {
  return "c" + std::to_string(smr::client_of_cmd(id)) + "#" +
         std::to_string(smr::seq_of_cmd(id));
}

}  // namespace

const char* client_attack_name(ClientAttackKind kind) {
  switch (kind) {
    case ClientAttackKind::kNone: return "none";
    case ClientAttackKind::kDropReplies: return "drop-replies";
    case ClientAttackKind::kDelayReplies: return "delay-replies";
    case ClientAttackKind::kForgeReplies: return "forge-replies";
    case ClientAttackKind::kForgeBodies: return "forge-bodies";
    case ClientAttackKind::kPhantomIds: return "phantom-ids";
  }
  return "?";
}

// -------------------------------------------------------- ClientAttacker

/// Intercepts sends; everything except client-bound REPLY frames passes
/// through byte-identical.  broadcast never carries replies (they are
/// unicast to the owning client), so it forwards untouched.
class ClientAttacker::AttackContext final : public sim::ForwardingContext {
 public:
  AttackContext(sim::Context& base, ClientAttacker& owner)
      : ForwardingContext(base), owner_(owner) {}

  void send(ProcessId to, Bytes payload) override {
    if (owner_.intercept(base_, to, payload)) return;
    base_.send(to, std::move(payload));
  }

  void broadcast(const Bytes& payload) override {
    // Relay bodies leave via broadcast, so the body forgery must hook
    // here too; every other attack targets unicast client-bound frames.
    if (owner_.config_.kind == ClientAttackKind::kForgeBodies) {
      Bytes copy = payload;
      if (owner_.forge_body(copy)) {
        base_.broadcast(copy);
        return;
      }
    }
    base_.broadcast(payload);
  }

 private:
  ClientAttacker& owner_;
};

ClientAttacker::ClientAttacker(std::unique_ptr<sim::Actor> inner,
                               ClientAttackerConfig config)
    : inner_(std::move(inner)), config_(config) {
  MODUBFT_EXPECTS(inner_ != nullptr);
  MODUBFT_EXPECTS(config_.n > 0);
}

bool ClientAttacker::forge_body(Bytes& payload) {
  if (!is_control_frame(payload)) return false;
  if (static_cast<smr::ControlKind>(payload[8]) !=
      smr::ControlKind::kCmdRelay) {
    return false;
  }
  try {
    Reader r(payload);
    r.u64();
    r.u8();
    smr::CmdRelay relay = smr::decode_cmd_relay(r);
    // Corrupt the body, KEEP the client's signature: the receiver must
    // notice the signature no longer covers the bytes.  Without the
    // check (body-forgery negative control) this divergent body wins
    // first-write-wins ingest and the real operation can never certify.
    relay.value += "!forged";
    payload = smr::encode_control_relay(relay);
    return true;
  } catch (const std::exception&) {
    return false;  // not a decodable relay: pass through
  }
}

bool ClientAttacker::intercept(sim::Context& ctx, ProcessId to,
                               Bytes& payload) {
  if (config_.kind == ClientAttackKind::kNone) return false;
  if (config_.kind == ClientAttackKind::kForgeBodies) {
    // Replica-bound relays (fetch answers ride unicast) get the same
    // treatment as broadcast ones; client traffic passes untouched.
    if (to.value < config_.n) forge_body(payload);
    return false;  // always send (possibly mutated)
  }
  if (to.value < config_.n) return false;  // replica-bound: never touched
  if (!is_control_frame(payload)) return false;
  if (static_cast<smr::ControlKind>(payload[8]) != smr::ControlKind::kReply) {
    return false;  // BUSY frames pass — shedding is not the attack surface
  }
  switch (config_.kind) {
    case ClientAttackKind::kDropReplies:
      return true;
    case ClientAttackKind::kDelayReplies:
      held_.emplace_back(to, std::move(payload));
      if (held_.size() > config_.hold_depth) release_one(ctx);
      return true;
    case ClientAttackKind::kForgeReplies:
      try {
        Reader r(payload);
        r.u64();
        r.u8();
        smr::ClientReply reply = smr::decode_client_reply(r);
        // Corrupt both the result and the claimed linearization point:
        // either alone must already fail the client's content check.
        reply.value += "!forged";
        reply.slot += 1000;
        payload = smr::encode_control_reply(reply);
      } catch (const std::exception&) {
        // A frame our own replica emitted failed to re-decode — pass it
        // through; the attack only ever weakens into honesty.
      }
      return false;  // send the (possibly forged) frame
    case ClientAttackKind::kForgeBodies:  // handled above
    case ClientAttackKind::kPhantomIds:   // no wire mutation at all
    case ClientAttackKind::kNone:
      break;
  }
  return false;
}

void ClientAttacker::release_one(sim::Context& ctx) {
  if (held_.empty()) return;
  auto [to, frame] = std::move(held_.front());
  held_.pop_front();
  ctx.send(to, std::move(frame));
}

void ClientAttacker::on_start(sim::Context& ctx) {
  AttackContext atk(ctx, *this);
  inner_->on_start(atk);
}

void ClientAttacker::on_message(sim::Context& ctx, ProcessId from,
                                const Bytes& payload) {
  // One held reply drains per event, so delayed replies are reordered
  // across operations but never starved: client retries are events too.
  release_one(ctx);
  AttackContext atk(ctx, *this);
  inner_->on_message(atk, from, payload);
}

void ClientAttacker::on_timer(sim::Context& ctx, std::uint64_t timer_id) {
  release_one(ctx);
  AttackContext atk(ctx, *this);
  inner_->on_timer(atk, timer_id);
}

// ----------------------------------------------------------------- audit

std::vector<Violation> audit_client_replies(
    const faults::SmrScenarioResult& result) {
  std::vector<Violation> out;
  if (result.commit_log_duplicates > 0) {
    out.push_back({ViolationKind::kClientReplyMismatch,
                   "witness replica applied " +
                       std::to_string(result.commit_log_duplicates) +
                       " command(s) more than once"});
  }
  for (const auto& [pid, replies] : result.client_accepted) {
    for (const client::AcceptedReply& ar : replies) {
      if (smr::client_of_cmd(ar.cmd_id) != pid) {
        out.push_back({ViolationKind::kClientReplyMismatch,
                       render_who(pid) + " accepted " + render_cmd(ar.cmd_id) +
                           " which belongs to another client"});
        continue;
      }
      const auto it = result.commit_log.find(ar.cmd_id);
      if (it == result.commit_log.end()) {
        out.push_back({ViolationKind::kClientReplyMismatch,
                       render_who(pid) + " accepted " + render_cmd(ar.cmd_id) +
                           " which the witness never committed"});
        continue;
      }
      const auto& [slot, cmd] = it->second;
      if (ar.slot != slot) {
        out.push_back({ViolationKind::kClientReplyMismatch,
                       render_who(pid) + " accepted " + render_cmd(ar.cmd_id) +
                           " at slot " + std::to_string(ar.slot) +
                           " but it committed at slot " +
                           std::to_string(slot)});
      }
      if (ar.op != cmd.op || ar.key != cmd.key || ar.value != cmd.value) {
        out.push_back({ViolationKind::kClientReplyMismatch,
                       render_who(pid) + " accepted " + render_cmd(ar.cmd_id) +
                           " with content differing from the committed " +
                           "command (key '" + ar.key + "' vs '" + cmd.key +
                           "', value '" + ar.value + "' vs '" + cmd.value +
                           "')"});
      }
    }
  }
  return out;
}

// ----------------------------------------------------------------- cells

namespace {

/// Builds the scenario shared by the cell and the negative control.
faults::SmrScenarioConfig make_scenario(const ClientCellConfig& config) {
  faults::SmrScenarioConfig sc;
  sc.n = config.n;
  sc.f = config.f;
  sc.seed = config.seed;
  sc.substrate = config.substrate;
  sc.backend = config.backend;
  sc.window = config.window;
  sc.batch = config.batch;
  sc.budget = config.budget;
  sc.checkpoint_interval = config.checkpoint_interval;

  faults::ClientLoadConfig load;
  load.count = config.clients;
  load.ops_per_client = config.ops_per_client;
  load.open_loop = config.open_loop;
  sc.clients = load;

  if (config.attack == ClientAttackKind::kPhantomIds) {
    // The attacker replicas "know" bodies for fabricated client ids the
    // rest of Π never saw — the model of a Byzantine proposer deciding
    // phantom ids.  One id sits just past a real client's script (only
    // the client's signed SEQ_BOUND / CLIENT_DONE can refute it) and one
    // sits far beyond the eligibility window (skipped arithmetically).
    MODUBFT_EXPECTS(config.clients >= 2);
    smr::Command just_past;
    just_past.id = smr::make_client_cmd_id(config.n, config.ops_per_client + 1);
    just_past.op = smr::Command::Op::kPut;
    just_past.key = "phantom";
    just_past.value = "beyond-script";
    smr::Command far_future;
    far_future.id = smr::make_client_cmd_id(config.n + 1, 1000);
    far_future.op = smr::Command::Op::kPut;
    far_future.key = "phantom";
    far_future.value = "beyond-window";
    for (std::uint32_t a : config.attackers) {
      sc.extra_workload[a] = {just_past, far_future};
    }
  }

  // Closed-loop arrival commits thin batches, and pipelined peers racing
  // for the same ids commit a no-op slot per concurrent op in the worst
  // case — so budget two slots per op plus drain margin for the window.
  // Undersizing is a liveness failure by construction: an op submitted
  // after the fixed log filled can never commit.
  const std::uint64_t total =
      static_cast<std::uint64_t>(config.clients) * config.ops_per_client;
  sc.slots = 2 * total + 2 * config.window;

  // Substrate-appropriate kill/restart instants: the simulator drains the
  // whole run in a few virtual ms; the wall-clock substrates need room
  // for OS scheduling before the restart fires.
  SimTime kill = config.kill_at;
  SimTime back = config.restart_at;
  if (kill == 0) {
    kill = config.substrate == runtime::Backend::kSim ? 1'500
           : config.substrate == runtime::Backend::kThreads ? 3'000
                                                            : 5'000;
  }
  if (back == 0) {
    back = config.substrate == runtime::Backend::kSim ? 3'000
           : config.substrate == runtime::Backend::kThreads ? 60'000
                                                            : 80'000;
  }
  sc.crashes.push_back({ProcessId{config.victim}, kill, back});

  if (config.link_chaos && config.substrate == runtime::Backend::kTcp) {
    // Every link dies at least once early on; random kills stay rare so
    // the run finishes inside the budget.
    faults::LinkFaultSpec spec;
    spec.kill_prob = 0.002;
    spec.kill_at_attempts = {3};
    spec.max_random_faults = 4;
    sc.link_faults.push_back(spec);
  }
  sc.assume_faulty = config.attackers;
  return sc;
}

/// Splices ClientAttacker under every attacker replica (restarted lives
/// included — wrap_actor re-applies on restart).
void arm_attackers(faults::SmrScenarioConfig& sc,
                   const ClientCellConfig& config) {
  if (config.attack == ClientAttackKind::kNone || config.attackers.empty()) {
    return;
  }
  if (config.attack == ClientAttackKind::kPhantomIds) {
    return;  // honest wire behavior; the attack is the preloaded workload
  }
  sc.wrap_actor = [config](ProcessId id, std::unique_ptr<sim::Actor> inner)
      -> std::unique_ptr<sim::Actor> {
    if (id.value >= config.n || config.attackers.count(id.value) == 0) {
      return inner;
    }
    ClientAttackerConfig acfg;
    acfg.kind = config.attack;
    acfg.n = config.n;
    return std::make_unique<ClientAttacker>(std::move(inner), acfg);
  };
}

}  // namespace

ClientCellOutcome run_client_cell(const ClientCellConfig& config) {
  MODUBFT_EXPECTS(config.n > 0 && config.victim < config.n);
  MODUBFT_EXPECTS(config.attackers.count(config.victim) == 0);
  MODUBFT_EXPECTS(config.clients > 0 && config.ops_per_client > 0);
  MODUBFT_EXPECTS(config.checkpoint_interval > 0);
  for (std::uint32_t a : config.attackers) MODUBFT_EXPECTS(a < config.n);

  faults::SmrScenarioConfig sc = make_scenario(config);
  arm_attackers(sc, config);

  ClientCellOutcome out;
  out.result = faults::run_smr_scenario(sc);
  out.recovered = out.result.recovered.count(config.victim) > 0;
  out.all_clients_done = out.result.clients_done.size() == config.clients;
  out.violations = audit_client_replies(out.result);
  out.pass = out.result.clean && out.result.all_committed &&
             out.result.stores_agree && out.all_clients_done &&
             out.recovered && out.violations.empty();

  const runtime::ClientSummary& cs = out.result.run_stats.client;
  std::ostringstream os;
  os << client_attack_name(config.attack) << "/"
     << runtime::backend_name(config.substrate) << " seed=" << config.seed
     << ": " << (out.pass ? "pass" : "FAIL") << " (done="
     << out.result.clients_done.size() << "/" << config.clients
     << " recovered=" << (out.recovered ? "yes" : "no")
     << " accepted=" << cs.accepted << " retries=" << cs.retries
     << " failovers=" << cs.failovers
     << " violations=" << out.violations.size() << ")";
  out.detail = os.str();
  return out;
}

ClientControlOutcome run_client_negative_control(std::uint64_t seed,
                                                 runtime::Backend substrate) {
  // Broken configuration: EVERY replica forges its replies and the clients
  // install the first reply without certification (trust_first_reply, a
  // switch no correct build sets).  No crash — the planted violation must
  // be attributable to the forgery alone.
  ClientCellConfig forged;
  forged.attack = ClientAttackKind::kForgeReplies;
  forged.substrate = substrate;
  forged.seed = seed;
  forged.attackers.clear();
  for (std::uint32_t i = 0; i < forged.n; ++i) forged.attackers.insert(i);

  faults::SmrScenarioConfig sc = make_scenario(forged);
  sc.crashes.clear();
  sc.clients->trust_first_reply = true;
  arm_attackers(sc, forged);

  const faults::SmrScenarioResult result = faults::run_smr_scenario(sc);

  ClientControlOutcome out;
  for (const auto& [pid, replies] : result.client_accepted) {
    out.accepted += replies.size();
  }
  out.violations = audit_client_replies(result);
  out.flagged = std::any_of(out.violations.begin(), out.violations.end(),
                            [](const Violation& v) {
                              return v.kind ==
                                     ViolationKind::kClientReplyMismatch;
                            });
  return out;
}

ClientBodyControlOutcome run_client_body_control(std::uint64_t seed,
                                                 runtime::Backend substrate) {
  // Broken configuration: one replica forges relay bodies and client
  // authentication is forced OFF (a switch no correct Byzantine build
  // sets).  The corrupted body then wins first-write-wins ingest on every
  // honest replica, commits, and the owning client's content check can
  // never assemble f+1 matching replies — so at least one client must
  // fail to finish.  No crash: the wedge must be attributable to the
  // forgery alone.
  ClientCellConfig forged;
  forged.attack = ClientAttackKind::kForgeBodies;
  forged.substrate = substrate;
  forged.seed = seed;

  faults::SmrScenarioConfig sc = make_scenario(forged);
  sc.crashes.clear();
  sc.clients->authenticate = false;
  // The run cannot end cleanly (the wedged client retries forever), so
  // cap the clock well below the default to fail fast.
  sc.max_time = 30'000'000;
  arm_attackers(sc, forged);

  const faults::SmrScenarioResult result = faults::run_smr_scenario(sc);

  ClientBodyControlOutcome out;
  out.clients = forged.clients;
  out.clients_done = result.clients_done.size();
  out.mismatched_replies = result.run_stats.client.mismatched_replies;
  out.landed = out.clients_done < out.clients;
  return out;
}

std::string to_json(const ClientCellOutcome& outcome) {
  std::ostringstream os;
  os << "{\"pass\":" << (outcome.pass ? "true" : "false")
     << ",\"clean\":" << (outcome.result.clean ? "true" : "false")
     << ",\"all_committed\":"
     << (outcome.result.all_committed ? "true" : "false")
     << ",\"clients_done\":" << outcome.result.clients_done.size()
     << ",\"recovered\":" << (outcome.recovered ? "true" : "false")
     << ",\"accepted\":" << outcome.result.run_stats.client.accepted
     << ",\"retries\":" << outcome.result.run_stats.client.retries
     << ",\"failovers\":" << outcome.result.run_stats.client.failovers
     << ",\"sheds\":" << outcome.result.run_stats.client.sheds
     << ",\"violations\":[";
  for (std::size_t i = 0; i < outcome.violations.size(); ++i) {
    if (i) os << ",";
    os << '"' << violation_name(outcome.violations[i].kind) << '"';
  }
  os << "]}";
  return os.str();
}

}  // namespace modubft::adversary
