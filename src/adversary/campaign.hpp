// Campaign runner: sweep (attack × substrate × seed), audit every cell.
//
// A campaign instantiates the attack taxonomy for (n, f), runs every
// requested (attack, substrate, seed) cell through run_bft_scenario with a
// SafetyAuditor tapped into the wire, and aggregates the verdicts into a
// machine-readable report.  A failing cell is automatically *minimized*:
// the attack is greedily shrunk (drop coalition members, un-fuzz
// processes, zero mutation rates) while it keeps failing, so the report
// names the smallest adversary that still breaks the invariant instead of
// the kitchen-sink spec that happened to be running.
//
// The optional negative control re-runs one cell against the deliberately
// broken protocol double (broken_double.hpp); the campaign is only `ok` if
// the auditor flagged it — a campaign whose auditor cannot see a blatant
// safety violation proves nothing about the cells that passed.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "adversary/attack.hpp"
#include "adversary/auditor.hpp"
#include "runtime/substrate.hpp"

namespace modubft::adversary {

struct CampaignConfig {
  std::uint32_t n = 4;
  std::uint32_t f = 1;
  /// Attack names to run; empty = the full catalog for (n, f).
  std::vector<std::string> attacks;
  std::vector<runtime::Backend> substrates{runtime::Backend::kSim};
  /// Seeds per (attack, substrate) cell: base_seed .. base_seed+seeds-1.
  std::uint32_t seeds = 1;
  std::uint64_t base_seed = 1;
  /// Per-cell wall-clock budget on the threaded/TCP substrates.
  std::chrono::milliseconds budget{20'000};
  /// Run the broken protocol double and require the auditor to flag it.
  bool negative_control = true;
  /// Greedily shrink failing attacks (costs extra runs per failure).
  bool minimize_failures = true;
};

/// Outcome of one (attack, substrate, seed) cell.
struct CellOutcome {
  std::string attack;
  runtime::Backend substrate = runtime::Backend::kSim;
  std::uint64_t seed = 0;
  /// Scenario-level properties (evaluated by run_bft_scenario).
  bool clean = false;
  bool termination = false;
  bool agreement = false;
  bool vector_validity = false;
  bool detectors_reliable = false;
  /// Wire-level audit verdict.
  AuditReport audit;
  /// Cell verdict: the audit found no violation and every correct process
  /// decided (an attack within the declared resilience must not block
  /// termination either).
  bool pass = false;
  /// Human-readable minimized attack, set for failing cells when
  /// minimization is on.
  std::string minimized;
};

struct CampaignReport {
  std::uint32_t n = 0;
  std::uint32_t f = 0;
  std::vector<CellOutcome> cells;
  std::uint64_t cells_run = 0;
  std::uint64_t cells_failed = 0;
  /// Negative control: absent = not run; otherwise the auditor's verdict
  /// on the broken double (flagged = the violations it reported).
  bool negative_control_ran = false;
  bool negative_control_flagged = false;
  std::vector<std::string> negative_control_kinds;
  /// All cells passed and the negative control (when run) was flagged.
  bool ok = false;
};

/// Runs one cell: scenario + auditor, no minimization.
CellOutcome run_attack_cell(std::uint32_t n, std::uint32_t f,
                            const AttackSpec& attack,
                            runtime::Backend substrate, std::uint64_t seed,
                            std::chrono::milliseconds budget);

/// Runs the broken protocol double under the auditor; returns the audit
/// (which must NOT be ok — the caller checks).
AuditReport run_negative_control(std::uint32_t n, std::uint32_t f,
                                 std::uint64_t seed);

/// Greedily shrinks `failing` while `still_fails` holds: drops coalition
/// faults, un-fuzzes processes, zeroes mutation rates.  Exposed with an
/// injectable predicate so the minimizer itself is unit-testable without
/// running scenarios.
AttackSpec minimize_attack(const AttackSpec& failing,
                           const std::function<bool(const AttackSpec&)>&
                               still_fails);

/// One-line summary of an attack's adversarial content (for reports).
std::string describe_attack(const AttackSpec& attack);

CampaignReport run_campaign(const CampaignConfig& config);

/// Renders the report as pretty-printed JSON (multi-line).
std::string to_json(const CampaignConfig& config,
                    const CampaignReport& report);

}  // namespace modubft::adversary
