// Attack taxonomy: named, composable adversarial campaigns (paper §2).
//
// An AttackSpec bundles everything one adversarial scenario needs:
// protocol-level Byzantine behaviours (faults/), wire-level mutation
// fuzzing (adversary/fuzzer.hpp), and the coalition of processes acting
// them out.  `attack_catalog(n, f)` enumerates the full taxonomy — every
// §2 failure class the repo can inject, the fuzzing profiles, and (for
// f ≥ 2) coalition attacks pairing behaviours across up to f processes —
// so the campaign runner (adversary/campaign.hpp) can sweep
// (attack × substrate × seed) grids mechanically.
//
// The taxonomy deliberately includes a fault-free control ("none"): an
// auditor that flags a clean run is itself broken, and the control keeps
// the campaign honest about that direction too.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "adversary/fuzzer.hpp"
#include "faults/fault_spec.hpp"

namespace modubft::adversary {

/// One named adversarial scenario.
struct AttackSpec {
  std::string name;
  /// Paper §2 failure class (muteness / value corruption / duplication /
  /// spurious statement / substitution / forged signature / corrupted
  /// certificate / equivocation / wire corruption / coalition / control).
  std::string paper_class;
  std::string description;

  /// Protocol-level misbehaviours, one per compromised process.
  std::vector<faults::FaultSpec> faults;
  /// Process indices whose outgoing frames pass through a WireMutator.
  std::set<std::uint32_t> fuzzed;
  /// Mutation profile applied to the `fuzzed` processes' frames.
  MutationSpec mutation;

  /// Smallest group / resilience the attack makes sense for.
  std::uint32_t min_n = 4;
  std::uint32_t min_f = 1;
  /// True when the methodology assigns a detection module to this class —
  /// recorded in campaign cells; the auditor itself only requires
  /// "detected or harmless" (an undetected attack must not break safety).
  bool expect_detection = false;

  /// All compromised process indices (fault carriers ∪ fuzzed).
  std::set<std::uint32_t> attackers() const;
  /// True iff the attack fits a group of size n with resilience f.
  bool fits(std::uint32_t n, std::uint32_t f) const;
};

/// The full taxonomy instantiated for a group of size `n` with declared
/// resilience `f`.  Attacks that need more processes or a larger coalition
/// than (n, f) allows are omitted, so every returned spec `fits(n, f)`.
std::vector<AttackSpec> attack_catalog(std::uint32_t n, std::uint32_t f);

/// Finds an attack by name; nullptr when absent.
const AttackSpec* find_attack(const std::vector<AttackSpec>& catalog,
                              const std::string& name);

}  // namespace modubft::adversary
