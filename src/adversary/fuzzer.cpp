#include "adversary/fuzzer.hpp"

#include <sstream>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace modubft::adversary {

std::string MutationSpec::describe() const {
  std::ostringstream os;
  os << "bitflip=" << bitflip_prob << " truncate=" << truncate_prob
     << " splice=" << splice_prob << " duplicate=" << duplicate_prob
     << " reorder=" << reorder_prob;
  return os.str();
}

Bytes mutate_frame(const Bytes& frame, Rng& rng, const MutationSpec& spec) {
  Bytes out = frame;
  if (out.empty()) return out;
  if (rng.next_bool(spec.bitflip_prob)) {
    const std::uint64_t flips = 1 + rng.next_below(4);
    for (std::uint64_t i = 0; i < flips; ++i) {
      const std::size_t pos = rng.next_below(out.size());
      out[pos] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    }
    return out;
  }
  if (rng.next_bool(spec.truncate_prob)) {
    out.resize(rng.next_below(out.size()));
    return out;
  }
  if (rng.next_bool(spec.splice_prob)) {
    // Field splice: stomp a short window with random bytes — length
    // prefixes, round numbers and digest bytes all live in such windows.
    const std::size_t len =
        std::min<std::size_t>(1 + rng.next_below(8), out.size());
    const std::size_t start = rng.next_below(out.size() - len + 1);
    for (std::size_t i = 0; i < len; ++i) {
      out[start + i] = static_cast<std::uint8_t>(rng.next_u64());
    }
    return out;
  }
  return out;
}

/// Intercepts sends and applies the mutation schedule.
class WireMutator::MutatingContext final : public sim::ForwardingContext {
 public:
  MutatingContext(sim::Context& base, WireMutator& owner)
      : ForwardingContext(base), owner_(owner) {}

  void send(ProcessId to, Bytes payload) override { emit(to, payload); }

  void broadcast(const Bytes& payload) override {
    // Per-destination mutation rolls: one destination may receive garbage
    // while another receives the authentic frame — the receivers' views
    // diverge exactly as under a real arbitrary fault.
    for (std::uint32_t i = 0; i < base_.n(); ++i) emit(ProcessId{i}, payload);
  }

 private:
  void emit(ProcessId to, const Bytes& payload) {
    Bytes frame = mutate_frame(payload, owner_.rng_, owner_.spec_);
    if (owner_.rng_.next_bool(owner_.spec_.duplicate_prob)) {
      base_.send(to, frame);
    }
    if (owner_.spec_.reorder_prob > 0) {
      auto held = owner_.held_.find(to);
      if (held != owner_.held_.end()) {
        // Release the held frame *after* the newer one: a FIFO violation
        // the genuine protocol stack can never produce.
        Bytes old = std::move(held->second);
        owner_.held_.erase(held);
        base_.send(to, std::move(frame));
        base_.send(to, std::move(old));
        return;
      }
      if (owner_.rng_.next_bool(owner_.spec_.reorder_prob)) {
        owner_.held_.emplace(to, std::move(frame));
        return;
      }
    }
    base_.send(to, std::move(frame));
  }

  WireMutator& owner_;
};

WireMutator::WireMutator(std::unique_ptr<sim::Actor> inner, MutationSpec spec,
                         std::uint64_t seed)
    : inner_(std::move(inner)), spec_(spec), rng_(seed ^ spec.salt) {
  MODUBFT_EXPECTS(inner_ != nullptr);
}

void WireMutator::on_start(sim::Context& ctx) {
  MutatingContext mut(ctx, *this);
  inner_->on_start(mut);
}

void WireMutator::on_message(sim::Context& ctx, ProcessId from,
                             const Bytes& payload) {
  MutatingContext mut(ctx, *this);
  inner_->on_message(mut, from, payload);
}

void WireMutator::on_timer(sim::Context& ctx, std::uint64_t timer_id) {
  MutatingContext mut(ctx, *this);
  inner_->on_timer(mut, timer_id);
}

}  // namespace modubft::adversary
