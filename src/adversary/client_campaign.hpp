// Client-liveness chaos cells: the request/reply path vs live adversaries.
//
// ISSUE 9's client layer has one safety anchor — reply certification
// (f + 1 byte-identical replies from distinct replicas for the Byzantine
// backend, a majority for crash) — and one liveness anchor — capped
// retries with contact failover.  The cells aim attacks at exactly those:
//
//   kDropReplies    The attacker replica swallows every REPLY it owes a
//                   client.  With ≤ f attackers the honest replicas alone
//                   form a certificate, so every operation still settles;
//                   a client whose *contact* is the attacker must fail
//                   over to make progress.
//   kDelayReplies   The attacker holds its REPLYs in a FIFO and releases
//                   one per subsequent event, reordering replies across
//                   operations and crossing them with client retries —
//                   the duplicate-suppression/replay path under load.
//   kForgeReplies   The attacker decodes each outgoing REPLY, corrupts
//                   the value and the claimed slot, re-encodes and sends.
//                   The forgery is content-checked and tallied by the
//                   client; it must never reach a certificate (the honest
//                   replies disagree with it byte-for-byte).
//   kForgeBodies    The attacker corrupts the VALUE of every CMD_RELAY it
//                   emits (broadcast and fetch-served alike) while keeping
//                   the client's signature.  Honest replicas must reject
//                   the body (the signature no longer covers it) and
//                   recover the genuine body through the fetch path — the
//                   owning client re-serves a signed REQUEST — so every
//                   operation still certifies against the real content.
//   kPhantomIds     The attacker runs honest code but is preloaded with
//                   command bodies for FABRICATED client ids: one just
//                   past a real client's script (refutable only by the
//                   client's signed SEQ_BOUND / CLIENT_DONE) and one far
//                   beyond the eligibility window.  Honest replicas must
//                   skip both deterministically instead of parking the
//                   commit frontier on bodies that can never authenticate.
//
// Every cell also kills and restarts a victim replica mid-run (the
// attacker is never the victim), so the client layer is exercised across
// a recovery: replayed replies must come from the restored client table.
//
// A cell passes iff the run terminates cleanly, every client finishes its
// script, the victim rejoins via verified state transfer, and the audit
// finds no kClientReplyMismatch: each client-accepted reply names a
// command the commit-log reference replica actually committed, at the
// committed slot, with the committed op/key/value — and no command was
// applied twice (exactly-once).
//
// The negative control runs the harness against a deliberately broken
// configuration — every replica forges and the clients trust the first
// reply without certification (trust_first_reply, a switch no correct
// build sets) — and must flag kClientReplyMismatch.  A harness that
// cannot catch the planted forgery proves nothing when it reports zero
// violations elsewhere.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "adversary/auditor.hpp"
#include "common/bytes.hpp"
#include "faults/scenario.hpp"
#include "runtime/substrate.hpp"
#include "sim/actor.hpp"

namespace modubft::adversary {

enum class ClientAttackKind : std::uint8_t {
  kNone = 0,
  kDropReplies,
  kDelayReplies,
  kForgeReplies,
  kForgeBodies,
  kPhantomIds,
};

const char* client_attack_name(ClientAttackKind kind);

/// Per-attacker knobs for ClientAttacker.
struct ClientAttackerConfig {
  ClientAttackKind kind = ClientAttackKind::kNone;
  /// Replica count: process ids >= n are clients, the attack surface.
  std::uint32_t n = 4;
  /// kDelayReplies: replies held in flight before the oldest is released.
  std::size_t hold_depth = 3;
};

/// Actor decorator that attacks ONLY replies leaving for clients: control
/// frames of kind kReply addressed to a process id >= n.  All consensus
/// and replica-to-replica traffic — including relays, fetches and the
/// recovery channel — passes through untouched, so the wrapped replica
/// keeps committing correctly and the attack is invisible to everything
/// but the reply certification it is trying to defeat.
class ClientAttacker final : public sim::Actor {
 public:
  ClientAttacker(std::unique_ptr<sim::Actor> inner,
                 ClientAttackerConfig config);

  void on_start(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, ProcessId from,
                  const Bytes& payload) override;
  void on_timer(sim::Context& ctx, std::uint64_t timer_id) override;

 private:
  class AttackContext;

  /// Attack hook for one outgoing frame.  Returns true if the frame was
  /// consumed (dropped or queued); false = send it unchanged.  `payload`
  /// may be mutated in place (forgery).
  bool intercept(sim::Context& ctx, ProcessId to, Bytes& payload);

  /// kForgeBodies: corrupt a CMD_RELAY's value in place, keeping the
  /// client signature.  Returns true if the frame was mutated.
  bool forge_body(Bytes& payload);

  /// kDelayReplies: release the oldest held reply, if any.
  void release_one(sim::Context& ctx);

  std::unique_ptr<sim::Actor> inner_;
  ClientAttackerConfig config_;
  std::deque<std::pair<ProcessId, Bytes>> held_;
};

// ---------------------------------------------------------------- cells

struct ClientCellConfig {
  ClientAttackKind attack = ClientAttackKind::kNone;
  runtime::Backend substrate = runtime::Backend::kSim;
  smr::Backend backend = smr::Backend::kByzantine;
  std::uint64_t seed = 1;
  std::uint32_t n = 4;
  std::uint32_t f = 1;
  std::uint32_t clients = 2;
  std::uint32_t ops_per_client = 8;
  /// Open-loop client arrival (kPhantomIds uses it: the wide eligibility
  /// window lets the just-past-script phantom park the frontier, forcing
  /// the SEQ_BOUND refutation path instead of a silent window skip).
  bool open_loop = false;
  std::uint32_t window = 4;
  std::uint32_t batch = 2;
  std::uint64_t checkpoint_interval = 4;
  /// The replica killed and restarted mid-run.
  std::uint32_t victim = 2;
  /// Replicas running the attack (must exclude the victim; ≤ f for a
  /// sound cell).
  std::set<std::uint32_t> attackers{1};
  /// Kill/restart instants (µs); 0 = substrate-appropriate default.
  SimTime kill_at = 0;
  SimTime restart_at = 0;
  /// kTcp only: also inject link kills under the framing layer.
  bool link_chaos = false;
  std::chrono::milliseconds budget{20'000};
};

struct ClientCellOutcome {
  faults::SmrScenarioResult result;
  std::vector<Violation> violations;
  /// Every client certified its whole script (CLIENT_DONE observed).
  bool all_clients_done = false;
  /// The victim rejoined via verified state transfer.
  bool recovered = false;
  /// clean ∧ all slots committed ∧ stores agree ∧ clients done ∧
  /// recovered ∧ zero violations.
  bool pass = false;
  std::string detail;
};

ClientCellOutcome run_client_cell(const ClientCellConfig& config);

/// Reply audit behind every cell: each accepted reply must name a command
/// the commit-log witness committed, at that slot, with that op/key/value,
/// and the witness must never have applied a command twice.  Returns
/// kClientReplyMismatch violations; empty = exactly-once linearization of
/// everything the clients believe happened.
std::vector<Violation> audit_client_replies(
    const faults::SmrScenarioResult& result);

// ----------------------------------------------------------- control

struct ClientControlOutcome {
  /// The planted forgery was flagged (the harness works).
  bool flagged = false;
  std::vector<Violation> violations;
  /// Replies the clients accepted in the broken configuration.
  std::uint64_t accepted = 0;
};

/// Negative control for the client audit: every replica forges its
/// replies and the clients trust the first reply without certification.
/// audit_client_replies must flag the accepted forgeries.
ClientControlOutcome run_client_negative_control(std::uint64_t seed,
                                                 runtime::Backend substrate);

struct ClientBodyControlOutcome {
  /// The body forgery landed: some client could not finish its script
  /// (the corrupted body committed and its replies can never certify).
  bool landed = false;
  std::uint64_t clients_done = 0;
  std::uint64_t clients = 0;
  std::uint64_t mismatched_replies = 0;
};

/// Negative control for body authentication: one replica forges relay
/// bodies (kForgeBodies) with client authentication FORCED OFF.  The
/// first-write-wins relay ingest then stores the corrupted body, commits
/// it, and the owning client can never certify — proving the signature
/// check is the load-bearing defence, not an accident of the harness.
ClientBodyControlOutcome run_client_body_control(std::uint64_t seed,
                                                 runtime::Backend substrate);

/// One-line JSON rendering for logs and campaign reports.
std::string to_json(const ClientCellOutcome& outcome);

}  // namespace modubft::adversary
