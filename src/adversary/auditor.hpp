// Substrate-wide safety auditor: paper invariants checked from the wire.
//
// The auditor is an omniscient observer outside the protocol: it taps every
// delivery (runtime::Substrate::set_delivery_tap / BftScenarioConfig::
// delivery_tap), reconstructs the run's evidence — signed statements,
// decision certificates, equivocations — and, once the run ends, checks the
// paper's safety properties **independently of the processes' own
// bookkeeping**:
//
//   1. Agreement (§4/§5): no two correct processes decide different vectors.
//   2. Certified decisions (§5.1): every vector decided by a correct
//      process is justified by evidence observed on the wire — either a
//      well-formed DECIDE certificate (CertAnalyzer::decide_wf) or a
//      quorum of well-formed CURRENT frames carrying that vector (the
//      paper's decision rule itself, Fig 2 line 20).  The second form
//      matters because with stop-on-decide every process may decide via
//      its own CURRENT quorum and halt before any DECIDE is delivered;
//      the CURRENTs that justified those decisions were delivered to the
//      deciders pre-halt, so the tap saw them.
//   3. Detector reliability (§3): no correct process ends up in any correct
//      process's faulty_i set ("if p_i is correct and p_j ∈ faulty_i then
//      p_j misbehaved").
//   4. Non-equivocation of correct processes: a correct process never signs
//      two different statements for the same (kind, round) — if the wire
//      shows it did, either a signature was forged or the process is not
//      actually correct; both are audit failures.
//   5. Attacker equivocations are detected or harmless: an attacker that
//      signed conflicting statements either lands in the correct
//      processes' faulty sets or fails to break agreement.
//
// The auditor deliberately shares no state with the processes: it decodes
// raw frames with bft::try_decode_message and verifies signatures with its
// own Verifier replica, so a bug in the protocol's bookkeeping cannot hide
// a violation from it.  observe() is thread-safe (taps arrive from node
// threads on the threaded/TCP substrates).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "bft/analyzer.hpp"
#include "bft/message.hpp"
#include "consensus/value.hpp"
#include "crypto/signature.hpp"
#include "sim/simulation.hpp"

namespace modubft::adversary {

enum class ViolationKind : std::uint8_t {
  /// Two correct processes decided different vectors.
  kDisagreement,
  /// A correct process's decided vector has no well-formed DECIDE
  /// certificate anywhere on the wire.
  kUncertifiedDecision,
  /// A correct process declared another correct process faulty.
  kFalseConviction,
  /// A correct process signed two conflicting statements.
  kCorrectEquivocation,
  /// An attacker equivocation went undetected AND agreement broke.
  kUndetectedHarmfulEquivocation,
  /// A restarted replica rejoined with a store that does not match the
  /// store a correct quorum agrees on (recovery safety, ISSUE 6).
  kRecoveredStoreMismatch,
  /// A client accepted a reply that does not match the committed log —
  /// wrong content, wrong slot, or a command the service never committed
  /// at all (client/service safety, ISSUE 9).
  kClientReplyMismatch,
};

const char* violation_name(ViolationKind kind);

struct Violation {
  ViolationKind kind;
  std::string detail;
};

struct AuditStats {
  std::uint64_t frames = 0;        // deliveries observed
  std::uint64_t undecodable = 0;   // frames try_decode_message rejected
  std::uint64_t bad_signature = 0; // decoded frames whose envelope sig failed
  std::uint64_t decide_frames = 0; // signature-valid DECIDE frames
  std::uint64_t wf_currents = 0;   // well-formed CURRENT frames
  std::uint64_t equivocations = 0; // (sender, kind, round) keys w/ conflicts
};

struct AuditorConfig {
  std::uint32_t n = 4;
  std::uint32_t f = 1;
  /// Independent verifier replica (same scheme + seed as the run).
  std::shared_ptr<const crypto::Verifier> verifier;
};

/// Ground truth the audit is evaluated against, supplied by the harness
/// after the run (the auditor learns nothing from the processes during it).
struct AuditEvidence {
  /// Indices of processes given no fault and no fuzzing.
  std::set<std::uint32_t> correct;
  /// Indices the attack compromised (fault carriers ∪ wire-fuzzed).
  std::set<std::uint32_t> attackers;
  /// Decisions reached by correct processes.
  std::map<std::uint32_t, consensus::VectorDecision> decisions;
  /// Union of the correct processes' faulty_i sets.
  std::set<std::uint32_t> declared_faulty;
};

struct AuditReport {
  bool ok = false;
  std::vector<Violation> violations;
  AuditStats stats;
};

class SafetyAuditor {
 public:
  explicit SafetyAuditor(AuditorConfig config);

  /// Delivery observer; plug into BftScenarioConfig::delivery_tap.
  /// Thread-safe; copies what it needs out of the non-owning payload.
  void observe(const sim::Delivery& delivery);

  /// Evaluates the invariants over everything observed.  Call after the
  /// run has fully stopped (no concurrent observe()).
  AuditReport finish(const AuditEvidence& evidence) const;

  const AuditStats& stats() const { return stats_; }

 private:
  /// Statement identity: one correct process signs at most one distinct
  /// core per (kind, round).
  struct StatementKey {
    std::uint32_t sender;
    bft::BftKind kind;
    std::uint64_t round;
    bool operator<(const StatementKey& other) const {
      if (sender != other.sender) return sender < other.sender;
      if (kind != other.kind) return kind < other.kind;
      return round < other.round;
    }
  };

  AuditorConfig config_;
  bft::CertAnalyzer analyzer_;

  mutable std::mutex mu_;
  AuditStats stats_;
  /// Distinct signature-verified cores seen per statement key (conflict
  /// evidence; capped to keep a flooding attacker from exhausting memory).
  std::map<StatementKey, std::vector<bft::MessageCore>> statements_;
  /// Signature-verified DECIDE frames, for certificate justification.
  std::vector<bft::SignedMessage> decides_;
  /// Senders of well-formed CURRENT frames per (round, vector): the
  /// quorum-path justification for a decided vector.
  std::map<std::pair<std::uint64_t, bft::VectorValue>, std::set<std::uint32_t>>
      wf_currents_;
};

/// Renders a report as a JSON object (one line, no trailing newline).
std::string to_json(const AuditReport& report);

}  // namespace modubft::adversary
