#include "adversary/recovery_campaign.hpp"

#include <algorithm>
#include <exception>
#include <sstream>
#include <utility>

#include "bft/checkpoint_cert.hpp"
#include "common/check.hpp"
#include "common/serial.hpp"
#include "crypto/hmac_signer.hpp"
#include "smr/checkpoint.hpp"
#include "smr/command.hpp"

namespace modubft::adversary {

namespace {

/// True iff the frame rides the reserved control slot (recovery traffic).
bool is_control_frame(const Bytes& payload) {
  if (payload.size() < 9) return false;
  for (std::size_t i = 0; i < 8; ++i) {
    if (payload[i] != 0xFF) return false;
  }
  return true;
}

/// The scenario CLI's synthetic workload: K puts/deletes cycling over 8
/// keys, so consecutive runs of the same size produce identical stores.
std::vector<smr::Command> synthetic_workload(std::uint32_t commands) {
  std::vector<smr::Command> out;
  out.reserve(commands);
  for (std::uint32_t c = 1; c <= commands; ++c) {
    smr::Command cmd;
    cmd.id = c;
    cmd.key = "key" + std::to_string(c % 8);
    if (c % 5 == 0) {
      cmd.op = smr::Command::Op::kDel;
    } else {
      cmd.op = smr::Command::Op::kPut;
      cmd.value = "v" + std::to_string(c);
    }
    out.push_back(std::move(cmd));
  }
  return out;
}

std::uint32_t store_quorum(const RecoveryCellConfig& config) {
  return config.backend == smr::Backend::kByzantine ? 2 * config.f + 1
                                                    : config.n / 2 + 1;
}

std::string render_who(std::uint32_t id) { return "p" + std::to_string(id + 1); }

}  // namespace

const char* recovery_attack_name(RecoveryAttackKind kind) {
  switch (kind) {
    case RecoveryAttackKind::kNone: return "none";
    case RecoveryAttackKind::kForgedCheckpoint: return "forged-checkpoint";
    case RecoveryAttackKind::kCorruptStateResp: return "corrupt-state-resp";
  }
  return "?";
}

crypto::Digest forged_checkpoint_digest(std::uint64_t slot) {
  Writer w;
  w.str("forged-ckpt");
  w.u64(slot);
  return crypto::sha256(std::move(w).take());
}

Bytes forged_state_resp(
    std::uint64_t claim_slot,
    const std::vector<const crypto::Signer*>& coalition) {
  smr::Snapshot fake;
  fake.slot = claim_slot;
  fake.applied = claim_slot;
  fake.data = {{"forged", "state"}};

  smr::StateResp resp;
  resp.ckpt_slot = claim_slot;
  resp.snapshot = smr::encode_snapshot(fake);
  const crypto::Digest digest = smr::snapshot_digest(resp.snapshot);
  const Bytes preimage = bft::checkpoint_signing_bytes(claim_slot, digest);
  for (const crypto::Signer* signer : coalition) {
    resp.cert_sigs.emplace_back(signer->id().value, signer->sign(preimage));
  }
  return smr::encode_control_state_resp(resp);
}

// ------------------------------------------------------ RecoveryAttacker

/// Intercepts sends; consensus frames pass through byte-identical, control
/// frames go through attack_frame().  broadcast stays a single mutation —
/// a coalition's forged votes must agree to ever share a certificate.
class RecoveryAttacker::AttackContext final : public sim::ForwardingContext {
 public:
  AttackContext(sim::Context& base, RecoveryAttacker& owner)
      : ForwardingContext(base), owner_(owner) {}

  void send(ProcessId to, Bytes payload) override {
    base_.send(to, owner_.attack_frame(payload));
  }

  void broadcast(const Bytes& payload) override {
    base_.broadcast(owner_.attack_frame(payload));
  }

 private:
  RecoveryAttacker& owner_;
};

RecoveryAttacker::RecoveryAttacker(std::unique_ptr<sim::Actor> inner,
                                   RecoveryAttackerConfig config,
                                   const crypto::Signer* self,
                                   std::vector<const crypto::Signer*> coalition)
    : inner_(std::move(inner)),
      config_(config),
      self_(self),
      rng_(config.seed) {
  MODUBFT_EXPECTS(inner_ != nullptr);
  MODUBFT_EXPECTS(self_ != nullptr);
  if (config_.kind == RecoveryAttackKind::kForgedCheckpoint) {
    forged_resp_ = forged_state_resp(config_.claim_slot, coalition);
  }
}

Bytes RecoveryAttacker::attack_frame(const Bytes& payload) {
  if (config_.kind == RecoveryAttackKind::kNone || !is_control_frame(payload)) {
    return payload;
  }
  const auto kind = static_cast<smr::ControlKind>(payload[8]);
  try {
    if (config_.kind == RecoveryAttackKind::kForgedCheckpoint) {
      if (kind == smr::ControlKind::kCheckpointVote) {
        // Re-sign a vote for the fabricated digest: the signature verifies
        // (it is our key), only the claim is a lie — the shape a key-holding
        // Byzantine replica actually produces.
        Reader r(payload);
        r.u64();
        r.u8();
        smr::CheckpointVote vote = smr::decode_checkpoint_vote(r);
        vote.digest = forged_checkpoint_digest(vote.slot);
        vote.sig = self_->sign(
            bft::checkpoint_signing_bytes(vote.slot, vote.digest));
        return smr::encode_control_vote(vote);
      }
      if (kind == smr::ControlKind::kStateResp) {
        return forged_resp_;
      }
    } else if (config_.kind == RecoveryAttackKind::kCorruptStateResp) {
      if (kind == smr::ControlKind::kStateResp) {
        // Stomp a window past the control header so the frame still routes
        // to the recovery decoder — that decoder is the attack surface.
        Bytes out = payload;
        const std::size_t body = 9;
        if (out.size() > body) {
          const std::size_t len = std::min<std::size_t>(
              1 + rng_.next_below(8), out.size() - body);
          const std::size_t start =
              body + rng_.next_below(out.size() - body - len + 1);
          for (std::size_t i = 0; i < len; ++i) {
            out[start + i] = static_cast<std::uint8_t>(rng_.next_u64());
          }
        }
        return out;
      }
    }
  } catch (const std::exception&) {
    // A frame our own replica emitted failed to re-decode — pass it
    // through; the attack only ever weakens into honesty.
  }
  return payload;
}

void RecoveryAttacker::on_start(sim::Context& ctx) {
  AttackContext atk(ctx, *this);
  inner_->on_start(atk);
}

void RecoveryAttacker::on_message(sim::Context& ctx, ProcessId from,
                                  const Bytes& payload) {
  AttackContext atk(ctx, *this);
  inner_->on_message(atk, from, payload);
}

void RecoveryAttacker::on_timer(sim::Context& ctx, std::uint64_t timer_id) {
  AttackContext atk(ctx, *this);
  inner_->on_timer(atk, timer_id);
}

// ----------------------------------------------------------------- audit

std::vector<Violation> audit_recovered_stores(
    const faults::SmrScenarioResult& result,
    const std::set<std::uint32_t>& restarted, std::uint32_t quorum,
    const std::map<std::string, std::string>* expected) {
  std::vector<Violation> out;

  // Reference store: supplied baseline, or the store the largest set of
  // correct replicas agrees on (the recovered replica votes too — with a
  // victim down and ≤ f attackers, the survivors alone may be < quorum).
  const std::map<std::string, std::string>* ref = expected;
  std::size_t support = 0;
  if (ref == nullptr) {
    for (const auto& [id, store] : result.stores) {
      std::size_t count = 0;
      for (const auto& [other_id, other] : result.stores) {
        if (other == store) ++count;
      }
      if (count > support) {
        support = count;
        ref = &store;
      }
    }
    if (ref == nullptr || support < quorum) {
      out.push_back({ViolationKind::kRecoveredStoreMismatch,
                     "no store is shared by a correct quorum (best support " +
                         std::to_string(support) + " < " +
                         std::to_string(quorum) + ")"});
      return out;
    }
  }

  for (std::uint32_t id : restarted) {
    const auto it = result.stores.find(id);
    if (it == result.stores.end()) continue;  // not a correct replica
    if (result.recovered.count(id) == 0) {
      out.push_back({ViolationKind::kRecoveredStoreMismatch,
                     render_who(id) +
                         " restarted but never installed verified state"});
      continue;
    }
    if (it->second != *ref) {
      out.push_back({ViolationKind::kRecoveredStoreMismatch,
                     render_who(id) + " recovered with " +
                         std::to_string(it->second.size()) +
                         " keys differing from the quorum store (" +
                         std::to_string(ref->size()) + " keys)"});
    }
  }
  return out;
}

// ----------------------------------------------------------------- cells

namespace {

/// Builds the scenario shared by the cell and the negative control.
/// `trust_unverified` + attacker set vary between the two.
faults::SmrScenarioConfig make_scenario(const RecoveryCellConfig& config) {
  faults::SmrScenarioConfig sc;
  sc.n = config.n;
  sc.f = config.f;
  sc.seed = config.seed;
  sc.substrate = config.substrate;
  sc.backend = config.backend;
  sc.window = config.window;
  sc.batch = config.batch;
  sc.budget = config.budget;
  sc.checkpoint_interval = config.checkpoint_interval;
  sc.workload = synthetic_workload(config.commands);
  sc.slots = (sc.workload.size() + config.batch - 1) / config.batch;

  // Substrate-appropriate kill/restart instants: the simulator drains the
  // whole workload in a few virtual ms; the wall-clock substrates need
  // room for OS scheduling before the restart fires.
  SimTime kill = config.kill_at;
  SimTime back = config.restart_at;
  if (kill == 0) {
    kill = config.substrate == runtime::Backend::kSim ? 1'500
           : config.substrate == runtime::Backend::kThreads ? 3'000
                                                            : 5'000;
  }
  if (back == 0) {
    back = config.substrate == runtime::Backend::kSim ? 3'000
           : config.substrate == runtime::Backend::kThreads ? 60'000
                                                            : 80'000;
  }
  sc.crashes.push_back({ProcessId{config.victim}, kill, back});
  sc.assume_faulty = config.attackers;
  return sc;
}

/// Splices RecoveryAttacker under every attacker replica.  `keys` must be
/// the same HMAC system run_smr_scenario derives from (n, seed) — shared
/// ownership keeps the signers alive for the run's whole lifetime.
void arm_attackers(faults::SmrScenarioConfig& sc,
                   const RecoveryCellConfig& config,
                   std::shared_ptr<crypto::SignatureSystem> keys) {
  if (config.attack == RecoveryAttackKind::kNone || config.attackers.empty()) {
    return;
  }
  std::vector<const crypto::Signer*> coalition;
  for (std::uint32_t a : config.attackers) {
    coalition.push_back(keys->signers[a].get());
  }
  sc.wrap_actor = [config, keys, coalition, claim = sc.slots](
                      ProcessId id, std::unique_ptr<sim::Actor> inner)
      -> std::unique_ptr<sim::Actor> {
    if (config.attackers.count(id.value) == 0) return inner;
    RecoveryAttackerConfig acfg;
    acfg.kind = config.attack;
    acfg.claim_slot = claim;
    acfg.seed = config.seed ^ (0x9e3779b97f4a7c15ull * (id.value + 1));
    return std::make_unique<RecoveryAttacker>(std::move(inner), acfg,
                                              keys->signers[id.value].get(),
                                              coalition);
  };
}

}  // namespace

RecoveryCellOutcome run_recovery_cell(const RecoveryCellConfig& config) {
  MODUBFT_EXPECTS(config.n > 0 && config.victim < config.n);
  MODUBFT_EXPECTS(config.attackers.count(config.victim) == 0);
  MODUBFT_EXPECTS(config.checkpoint_interval > 0);
  for (std::uint32_t a : config.attackers) MODUBFT_EXPECTS(a < config.n);

  faults::SmrScenarioConfig sc = make_scenario(config);
  auto keys = std::make_shared<crypto::SignatureSystem>(
      crypto::HmacScheme{}.make_system(config.n, config.seed));
  arm_attackers(sc, config, keys);

  RecoveryCellOutcome out;
  out.result = faults::run_smr_scenario(sc);
  out.recovered = out.result.recovered.count(config.victim) > 0;
  out.violations =
      audit_recovered_stores(out.result, {config.victim}, store_quorum(config));
  out.pass = out.result.clean && out.result.all_committed && out.recovered &&
             out.violations.empty();

  std::ostringstream os;
  os << recovery_attack_name(config.attack) << "/"
     << runtime::backend_name(config.substrate) << " seed=" << config.seed
     << ": " << (out.pass ? "pass" : "FAIL") << " (recovered="
     << (out.recovered ? "yes" : "no")
     << " rejects=" << out.result.run_stats.pipeline.recovery_rejects
     << " violations=" << out.violations.size() << ")";
  out.detail = os.str();
  return out;
}

RecoveryControlOutcome run_recovery_negative_control(
    std::uint64_t seed, runtime::Backend substrate) {
  // Honest baseline of the same cell: its quorum store is the ground truth
  // the forged run is audited against (in the forged run every peer lies,
  // so no in-run quorum exists to vote).
  RecoveryCellConfig base;
  base.attack = RecoveryAttackKind::kNone;
  base.attackers.clear();
  base.substrate = substrate;
  base.seed = seed;
  const RecoveryCellOutcome honest = run_recovery_cell(base);

  // Broken configuration: all peers forge, and the victim installs the
  // first STATE_RESP without verification.  The fabricated snapshot claims
  // the last slot, so the victim "finishes" with a store that exists on no
  // honest replica.
  RecoveryCellConfig forged = base;
  forged.attack = RecoveryAttackKind::kForgedCheckpoint;
  for (std::uint32_t i = 0; i < forged.n; ++i) {
    if (i != forged.victim) forged.attackers.insert(i);
  }
  faults::SmrScenarioConfig sc = make_scenario(forged);
  sc.recovery_trust_unverified = true;
  auto keys = std::make_shared<crypto::SignatureSystem>(
      crypto::HmacScheme{}.make_system(forged.n, forged.seed));
  arm_attackers(sc, forged, keys);

  const faults::SmrScenarioResult result = faults::run_smr_scenario(sc);

  RecoveryControlOutcome out;
  const auto it = result.stores.find(forged.victim);
  if (it != result.stores.end()) out.installed = it->second;
  out.violations = audit_recovered_stores(
      result, {forged.victim},
      /*quorum=*/2 * forged.f + 1, &honest.result.store);
  out.flagged = std::any_of(out.violations.begin(), out.violations.end(),
                            [](const Violation& v) {
                              return v.kind ==
                                     ViolationKind::kRecoveredStoreMismatch;
                            });
  return out;
}

std::string to_json(const RecoveryCellOutcome& outcome) {
  std::ostringstream os;
  os << "{\"pass\":" << (outcome.pass ? "true" : "false")
     << ",\"recovered\":" << (outcome.recovered ? "true" : "false")
     << ",\"clean\":" << (outcome.result.clean ? "true" : "false")
     << ",\"all_committed\":" << (outcome.result.all_committed ? "true" : "false")
     << ",\"recovery_rejects\":"
     << outcome.result.run_stats.pipeline.recovery_rejects
     << ",\"violations\":[";
  for (std::size_t i = 0; i < outcome.violations.size(); ++i) {
    if (i) os << ",";
    os << '"' << violation_name(outcome.violations[i].kind) << '"';
  }
  os << "]}";
  return os.str();
}

}  // namespace modubft::adversary
