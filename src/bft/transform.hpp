// Generic protocol transformation (paper §3, "General Methodology").
//
// The paper's claim is that the five-module decomposition is *generic*:
// any regular round-based crash-resilient protocol can be transformed by
// wrapping it with the signature, muteness, non-muteness and certification
// modules.  TransformedActor is that wrapper as a reusable component:
//
//   * ingress pipeline — decode → signature check → identity check →
//     muteness feed → faulty-set filter → per-peer behaviour model →
//     deliver to the protocol;
//   * future-round buffering — messages for rounds the receiver has not
//     reached are held back until the receiver's own quorum evidence
//     legitimizes them (footnote 5 generalized);
//   * egress — the protocol emits (core, certificate) pairs; the pipeline
//     signs and broadcasts them.
//
// What stays protocol-specific, exactly as the paper says ("the actual
// design of some of these modules cannot be performed independently of the
// algorithm that will use them"):
//   * the RoundProtocol itself, and
//   * the PeerModel — the Figure 4-style state machine encoding the
//     protocol's program text.
//
// Two instantiations exist in this repository: the Byzantine vector
// consensus (BftProcess, hand-specialized for performance and fidelity to
// Figure 3) and the certified lockstep barrier (lockstep.hpp), which plugs
// into this wrapper directly and demonstrates the methodology on a second
// protocol.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "bft/modules.hpp"
#include "sim/actor.hpp"

namespace modubft::bft {

/// Facilities the pipeline offers the wrapped protocol module.
class ModuleServices {
 public:
  virtual ~ModuleServices() = default;

  /// ◇M suspicion (muteness module).
  virtual bool suspects_mute(ProcessId q, SimTime now) = 0;

  /// Read-only view of faulty_i (non-muteness module).
  virtual bool is_faulty(ProcessId q) const = 0;
  virtual const std::set<ProcessId>& faulty_set() const = 0;

  /// Signs and broadcasts a message (certification + signature egress).
  virtual void emit(sim::Context& ctx, MessageCore core, Certificate cert) = 0;
};

/// The protocol module slot of Figure 1.  Receives only messages that
/// passed every detection module.
class RoundProtocol {
 public:
  virtual ~RoundProtocol() = default;

  virtual void rp_start(ModuleServices& services, sim::Context& ctx) = 0;
  virtual void rp_deliver(ModuleServices& services, sim::Context& ctx,
                          const SignedMessage& msg) = 0;
  virtual void rp_timer(ModuleServices& services, sim::Context& ctx,
                        std::uint64_t timer_id) = 0;

  /// The receiver's current round, used for future-round buffering.
  virtual Round rp_round() const = 0;

  /// True once the protocol finished (the actor then stops).
  virtual bool rp_done() const = 0;
};

/// Per-peer behaviour model slot (the protocol-specific part of the
/// non-muteness module).  One instance per monitored peer.
class PeerModel {
 public:
  virtual ~PeerModel() = default;

  /// Validates the peer's next message (in FIFO order).  A failing verdict
  /// convicts the peer; FaultKind::kNone means "already convicted, drop".
  virtual Verdict observe(const SignedMessage& msg) = 0;
};

using PeerModelFactory =
    std::function<std::unique_ptr<PeerModel>(ProcessId peer)>;

struct TransformConfig {
  std::uint32_t n = 0;
  fd::MutenessConfig muteness{};
  /// Messages with round > rp_round() wait in the buffer; rounds at most
  /// this far ahead are kept (Byzantine flooding bound).
  std::uint32_t max_buffered_rounds = 1024;
};

/// The generic five-module composition.
class TransformedActor final : public sim::Actor, private ModuleServices {
 public:
  TransformedActor(TransformConfig config, const crypto::Signer* signer,
                   std::shared_ptr<const crypto::Verifier> verifier,
                   std::unique_ptr<RoundProtocol> protocol,
                   PeerModelFactory model_factory);

  void on_start(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, ProcessId from,
                  const Bytes& payload) override;
  void on_timer(sim::Context& ctx, std::uint64_t timer_id) override;

  const std::set<ProcessId>& faulty() const { return faulty_; }
  const std::vector<FaultRecord>& records() const { return records_; }
  const RoundProtocol& protocol() const { return *protocol_; }

 private:
  // ModuleServices
  bool suspects_mute(ProcessId q, SimTime now) override;
  bool is_faulty(ProcessId q) const override { return faulty_.count(q) > 0; }
  const std::set<ProcessId>& faulty_set() const override { return faulty_; }
  void emit(sim::Context& ctx, MessageCore core, Certificate cert) override;

  void convict(ProcessId culprit, FaultKind kind, std::string detail,
               SimTime now);
  void deliver_validated(sim::Context& ctx, const SignedMessage& msg);
  void drain_ready(sim::Context& ctx);

  TransformConfig config_;
  SignatureModule signature_;
  MutenessModule muteness_;
  std::unique_ptr<RoundProtocol> protocol_;
  std::vector<std::unique_ptr<PeerModel>> models_;
  std::set<ProcessId> faulty_;
  std::vector<FaultRecord> records_;
  std::map<std::uint32_t, std::vector<SignedMessage>> future_;
};

}  // namespace modubft::bft
