#include "bft/analyzer.hpp"

#include <set>
#include <sstream>

#include "common/check.hpp"

namespace modubft::bft {

namespace {
// Structural recursion depth cap.  decode_message already caps nesting, so
// this is defence in depth against hand-built structures in tests.
constexpr std::uint32_t kMaxDepth = 40;

std::string describe(const MessageCore& core) {
  std::ostringstream os;
  os << kind_name(core.kind) << '(' << core.sender << ',' << core.round << ')';
  return os.str();
}
}  // namespace

ProcessId bft_coordinator_of(Round r, std::uint32_t n) {
  MODUBFT_EXPECTS(r.value >= 1);
  return ProcessId{(r.value - 1) % n};
}

CertAnalyzer::CertAnalyzer(std::uint32_t n, std::uint32_t quorum,
                           std::shared_ptr<const crypto::Verifier> verifier,
                           std::shared_ptr<crypto::VerifyPool> pool)
    : n_(n),
      quorum_(quorum),
      verifier_(std::move(verifier)),
      cache_(std::dynamic_pointer_cast<const crypto::CachingVerifier>(
          verifier_)),
      pool_(std::move(pool)) {
  MODUBFT_EXPECTS(n_ >= 2);
  MODUBFT_EXPECTS(quorum_ >= 1 && quorum_ <= n_);
  MODUBFT_EXPECTS(verifier_ != nullptr);
}

void CertAnalyzer::collect_warm_jobs(
    const Certificate& cert, std::uint32_t depth,
    std::vector<crypto::VerifyPool::Job>* jobs,
    std::set<std::pair<std::uint32_t, crypto::Digest>>* seen) const {
  if (cert.pruned || depth > kMaxDepth) return;
  for (std::size_t i = 0; i < cert.size(); ++i) {
    const MemberPtr& m = cert.member_ptr(i);
    if (m->core.sender.value >= n_) continue;  // member_signature_ok fails it
    // Memoize on this thread: the digest computation recursively hashes
    // the member's own certificate, so after this call the pool job only
    // reads already-materialized state.
    const crypto::Digest digest = cert.member_signing_digest(i);
    if (!seen->insert({m->core.sender.value, digest}).second) {
      // Same (signer, digest) ⇒ byte-identical member (collision
      // resistance) ⇒ its subtree was already walked at first sight.
      continue;
    }
    jobs->push_back([cache = cache_, m, digest] {
      return cache->verify_digest(m->core.sender, digest, m->sig, [&m] {
        return signing_bytes(m->core, m->cert);
      });
    });
    collect_warm_jobs(m->cert, depth + 1, jobs, seen);
  }
}

void CertAnalyzer::warm_certificate(const Certificate& cert) const {
  if (!pool_ || !cache_) return;
  std::vector<crypto::VerifyPool::Job> jobs;
  std::set<std::pair<std::uint32_t, crypto::Digest>> seen;
  collect_warm_jobs(cert, 0, &jobs, &seen);
  if (!jobs.empty()) pool_->verify_all(std::move(jobs));
}

bool CertAnalyzer::signature_ok(const SignedMessage& msg) const {
  return verifier_->verify(msg.core.sender, signing_bytes(msg.core, msg.cert),
                           msg.sig);
}

bool CertAnalyzer::member_signature_ok(const Certificate& parent,
                                       std::size_t i) const {
  const SignedMessage& m = parent.member(i);
  if (m.core.sender.value >= n_) return false;
  if (cache_) {
    return cache_->verify_digest(
        m.core.sender, parent.member_signing_digest(i), m.sig,
        [&m] { return signing_bytes(m.core, m.cert); });
  }
  return verifier_->verify(m.core.sender, signing_bytes(m.core, m.cert),
                           m.sig);
}

Verdict CertAnalyzer::init_wf(const SignedMessage& msg) const {
  if (msg.core.kind != BftKind::kInit)
    return Verdict::fail(FaultKind::kWrongExpected, "not an INIT");
  if (msg.core.round.value != 0)
    return Verdict::fail(FaultKind::kWrongExpected,
                         "INIT must carry round 0");
  if (!msg.core.est.empty())
    return Verdict::fail(FaultKind::kWrongExpected,
                         "INIT must not carry an estimate vector");
  // "Messages INIT have an empty certificate."
  if (!msg.cert.empty())
    return Verdict::fail(FaultKind::kBadCertificate,
                         "INIT certificate must be empty");
  return Verdict::ok();
}

Verdict CertAnalyzer::est_wf(const Certificate& cert,
                             const VectorValue& v) const {
  return est_wf_depth(cert, v, 0);
}

Verdict CertAnalyzer::est_wf_depth(const Certificate& cert,
                                   const VectorValue& v,
                                   std::uint32_t depth) const {
  if (depth > kMaxDepth)
    return Verdict::fail(FaultKind::kBadCertificate, "est chain too deep");
  if (cert.pruned)
    return Verdict::fail(FaultKind::kBadCertificate,
                         "est evidence pruned where contents are required");
  if (v.size() != n_)
    return Verdict::fail(FaultKind::kWrongExpected,
                         "estimate vector has wrong arity");

  // Case A: a quorum of INITs witnessing exactly the non-null entries.
  std::set<ProcessId> witnesses;
  bool init_mismatch = false;
  for (std::size_t i = 0; i < cert.size(); ++i) {
    const SignedMessage& m = cert.member(i);
    if (m.core.kind != BftKind::kInit) continue;
    if (!member_signature_ok(cert, i)) {
      return Verdict::fail(FaultKind::kBadCertificate,
                           "INIT member with invalid signature");
    }
    if (!init_wf(m))
      return Verdict::fail(FaultKind::kBadCertificate,
                           "malformed INIT member");
    const ProcessId j = m.core.sender;
    if (!v[j.value].has_value() || *v[j.value] != m.core.init_value) {
      init_mismatch = true;
      continue;
    }
    witnesses.insert(j);
  }
  if (witnesses.size() >= quorum_) {
    if (init_mismatch)
      return Verdict::fail(FaultKind::kBadCertificate,
                           "INIT member conflicts with the vector");
    // Every non-null entry must be witnessed.
    for (std::uint32_t j = 0; j < n_; ++j) {
      if (v[j].has_value() && witnesses.count(ProcessId{j}) == 0) {
        return Verdict::fail(FaultKind::kBadCertificate,
                             "unwitnessed non-null vector entry");
      }
    }
    return Verdict::ok();
  }

  // Case B: an adoption chain — exactly one CURRENT carrying the same
  // vector, itself well-formed.
  const SignedMessage* chain = nullptr;
  std::size_t chain_i = 0;
  for (std::size_t i = 0; i < cert.size(); ++i) {
    const SignedMessage& m = cert.member(i);
    if (m.core.kind != BftKind::kCurrent) continue;
    if (chain != nullptr)
      return Verdict::fail(FaultKind::kBadCertificate,
                           "ambiguous est evidence (several CURRENTs)");
    chain = &m;
    chain_i = i;
  }
  if (chain == nullptr)
    return Verdict::fail(FaultKind::kBadCertificate,
                         "insufficient est evidence");
  if (!member_signature_ok(cert, chain_i))
    return Verdict::fail(FaultKind::kBadCertificate,
                         "CURRENT member with invalid signature");
  if (chain->core.est != v)
    return Verdict::fail(FaultKind::kBadCertificate,
                         "adopted CURRENT carries a different vector");
  return current_wf_depth(*chain, depth + 1);
}

Verdict CertAnalyzer::entry_wf(const Certificate& cert, Round r) const {
  return entry_wf_depth(cert, r, 0);
}

Verdict CertAnalyzer::entry_wf_depth(const Certificate& cert, Round r,
                                     std::uint32_t depth) const {
  if (depth > kMaxDepth)
    return Verdict::fail(FaultKind::kBadCertificate, "entry chain too deep");
  if (r.value <= 1) return Verdict::ok();  // round 1 needs no witness
  if (cert.pruned)
    return Verdict::fail(FaultKind::kBadCertificate,
                         "round evidence pruned where contents are required");

  // Quorum of NEXTs for the previous round.
  std::set<ProcessId> next_senders;
  for (std::size_t i = 0; i < cert.size(); ++i) {
    const SignedMessage& m = cert.member(i);
    if (m.core.kind != BftKind::kNext) continue;
    if (m.core.round != r.prev()) continue;
    if (!member_signature_ok(cert, i)) {
      return Verdict::fail(FaultKind::kBadCertificate,
                           "NEXT member with invalid signature");
    }
    next_senders.insert(m.core.sender);
  }
  if (next_senders.size() >= quorum_) return Verdict::ok();

  // Relay form: a single nested CURRENT of the same round carries the
  // witness transitively.
  const SignedMessage* chain = nullptr;
  std::size_t chain_i = 0;
  for (std::size_t i = 0; i < cert.size(); ++i) {
    const SignedMessage& m = cert.member(i);
    if (m.core.kind != BftKind::kCurrent) continue;
    if (chain != nullptr)
      return Verdict::fail(FaultKind::kBadCertificate,
                           "ambiguous round evidence (several CURRENTs)");
    chain = &m;
    chain_i = i;
  }
  if (chain == nullptr || chain->core.round != r)
    return Verdict::fail(FaultKind::kBadCertificate,
                         "insufficient round evidence");
  if (!member_signature_ok(cert, chain_i))
    return Verdict::fail(FaultKind::kBadCertificate,
                         "CURRENT member with invalid signature");
  return entry_wf_depth(chain->cert, r, depth + 1);
}

Verdict CertAnalyzer::current_wf(const SignedMessage& msg) const {
  return current_wf_depth(msg, 0);
}

Verdict CertAnalyzer::current_wf_depth(const SignedMessage& msg,
                                       std::uint32_t depth) const {
  if (depth > kMaxDepth)
    return Verdict::fail(FaultKind::kBadCertificate, "relay chain too deep");
  if (msg.core.kind != BftKind::kCurrent)
    return Verdict::fail(FaultKind::kWrongExpected, "not a CURRENT");
  if (msg.core.round.value < 1)
    return Verdict::fail(FaultKind::kWrongExpected, "CURRENT round 0");
  if (msg.core.est.size() != n_)
    return Verdict::fail(FaultKind::kWrongExpected,
                         "estimate vector has wrong arity");

  const ProcessId coord = bft_coordinator_of(msg.core.round, n_);
  if (msg.core.sender == coord) {
    // Coordinator form (Fig 3 line 12): est_cert ∪ next_cert.
    if (Verdict v = est_wf_depth(msg.cert, msg.core.est, depth + 1); !v)
      return v;
    return entry_wf_depth(msg.cert, msg.core.round, depth + 1);
  }

  // Relay form (Fig 3 line 19): exactly the first valid CURRENT received.
  if (msg.cert.pruned)
    return Verdict::fail(FaultKind::kBadCertificate,
                         "relayed CURRENT with pruned certificate");
  if (msg.cert.size() != 1 ||
      msg.cert.member(0).core.kind != BftKind::kCurrent) {
    return Verdict::fail(
        FaultKind::kBadCertificate,
        "relayed CURRENT must carry exactly the adopted CURRENT");
  }
  const SignedMessage& adopted = msg.cert.member(0);
  if (!member_signature_ok(msg.cert, 0))
    return Verdict::fail(FaultKind::kBadCertificate,
                         "adopted CURRENT with invalid signature");
  if (adopted.core.round != msg.core.round)
    return Verdict::fail(FaultKind::kBadCertificate,
                         "adopted CURRENT from a different round");
  if (adopted.core.est != msg.core.est)
    return Verdict::fail(FaultKind::kWrongExpected,
                         "relayed vector differs from the adopted one — "
                         "substituted message");
  return current_wf_depth(adopted, depth + 1);
}

Verdict CertAnalyzer::next_wf(const SignedMessage& msg,
                              PeerPhase sender_phase) const {
  if (msg.core.kind != BftKind::kNext)
    return Verdict::fail(FaultKind::kWrongExpected, "not a NEXT");
  if (msg.core.round.value < 1)
    return Verdict::fail(FaultKind::kWrongExpected, "NEXT round 0");
  if (!msg.core.est.empty())
    return Verdict::fail(FaultKind::kWrongExpected,
                         "NEXT must not carry an estimate vector");
  if (msg.cert.pruned)
    return Verdict::fail(FaultKind::kBadCertificate,
                         "NEXT justification pruned");

  const Round r = msg.core.round;
  std::set<ProcessId> current_senders;
  std::set<ProcessId> next_senders;
  for (std::size_t i = 0; i < msg.cert.size(); ++i) {
    const SignedMessage& m = msg.cert.member(i);
    if (m.core.round != r) continue;  // older-round context is ignorable
    if (m.core.kind == BftKind::kCurrent) {
      if (!member_signature_ok(msg.cert, i))
        return Verdict::fail(FaultKind::kBadCertificate,
                             "CURRENT member with invalid signature");
      current_senders.insert(m.core.sender);
    } else if (m.core.kind == BftKind::kNext) {
      if (!member_signature_ok(msg.cert, i))
        return Verdict::fail(FaultKind::kBadCertificate,
                             "NEXT member with invalid signature");
      next_senders.insert(m.core.sender);
    }
  }
  std::set<ProcessId> rec_from = current_senders;
  rec_from.insert(next_senders.begin(), next_senders.end());

  const bool end_of_round = next_senders.size() >= quorum_;      // line 31
  const bool change_mind =                                        // line 29
      !current_senders.empty() && rec_from.size() >= quorum_;
  const bool suspicion = current_senders.empty();                 // line 24

  switch (sender_phase) {
    case PeerPhase::kQ0:
      // Before sending any vote this round the sender cannot have processed
      // a CURRENT (it would have relayed it, FIFO would show us that), so
      // only the suspicion and end-of-round justifications are compatible.
      if (suspicion || end_of_round) return Verdict::ok();
      return Verdict::fail(FaultKind::kBadCertificate,
                           "NEXT from q0 carrying CURRENT evidence — "
                           "misevaluated sending condition");
    case PeerPhase::kQ1:
      if (change_mind || end_of_round) return Verdict::ok();
      return Verdict::fail(FaultKind::kBadCertificate,
                           "NEXT from q1 without change-mind or end-of-round "
                           "justification");
    case PeerPhase::kQ2:
      return Verdict::fail(FaultKind::kOutOfOrder,
                           "duplicate NEXT in one round");
  }
  return Verdict::fail(FaultKind::kBadCertificate, "unreachable");
}

Verdict CertAnalyzer::decide_wf(const SignedMessage& msg) const {
  if (msg.core.kind != BftKind::kDecide)
    return Verdict::fail(FaultKind::kWrongExpected, "not a DECIDE");
  if (msg.core.est.size() != n_)
    return Verdict::fail(FaultKind::kWrongExpected,
                         "decided vector has wrong arity");
  if (msg.core.round.value < 1)
    return Verdict::fail(FaultKind::kWrongExpected, "DECIDE round 0");
  if (msg.cert.pruned)
    return Verdict::fail(FaultKind::kBadCertificate,
                         "DECIDE certificate pruned");

  std::set<ProcessId> senders;
  for (std::size_t i = 0; i < msg.cert.size(); ++i) {
    const SignedMessage& m = msg.cert.member(i);
    if (m.core.kind != BftKind::kCurrent) continue;
    if (m.core.round != msg.core.round) continue;
    if (m.core.est != msg.core.est) {
      return Verdict::fail(FaultKind::kBadCertificate,
                           "DECIDE certificate contains a CURRENT for a "
                           "different vector");
    }
    if (!member_signature_ok(msg.cert, i))
      return Verdict::fail(FaultKind::kBadCertificate,
                           "CURRENT member with invalid signature");
    if (Verdict v = current_wf_depth(m, 1); !v) {
      return Verdict::fail(FaultKind::kBadCertificate,
                           "ill-formed CURRENT inside DECIDE certificate: " +
                               v.detail + " (" + describe(m.core) + ")");
    }
    senders.insert(m.core.sender);
  }
  if (senders.size() < quorum_) {
    return Verdict::fail(FaultKind::kBadCertificate,
                         "DECIDE without a quorum of matching CURRENTs — "
                         "misevaluated decision condition");
  }
  return Verdict::ok();
}

const SignedMessage* CertAnalyzer::chain_base(
    const SignedMessage& current) const {
  const SignedMessage* m = &current;
  std::uint32_t depth = 0;
  while (depth++ <= kMaxDepth) {
    if (m->core.kind != BftKind::kCurrent) return nullptr;
    const ProcessId coord = bft_coordinator_of(m->core.round, n_);
    if (m->core.sender == coord) return m;
    if (m->cert.pruned || m->cert.size() != 1) return nullptr;
    m = &m->cert.member(0);
  }
  return nullptr;
}

}  // namespace modubft::bft
