// Configuration and resilience bounds of the transformed protocol.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "common/check.hpp"
#include "common/ids.hpp"
#include "fd/muteness_fd.hpp"

namespace modubft::crypto {
class CachingVerifier;
class VerifyPool;
}  // namespace modubft::crypto

namespace modubft::bft {

struct MessageCore;
class Certificate;

/// Certification-service bound C: the maximum number of faulty processes
/// the certification mechanism copes with.  "Usual certification mechanisms
/// require C = ⌊(n−1)/3⌋" (paper footnote 2) — majority tests over sets of
/// signed messages need n > 3C.
inline std::uint32_t default_certification_bound(std::uint32_t n) {
  MODUBFT_EXPECTS(n >= 1);
  return (n - 1) / 3;
}

/// The paper's resilience bound: F ≤ min(⌊(n−1)/2⌋, C).
inline std::uint32_t max_tolerated_faults(
    std::uint32_t n, std::optional<std::uint32_t> certification_bound = {}) {
  const std::uint32_t c =
      certification_bound.value_or(default_certification_bound(n));
  return std::min((n - 1) / 2, c);
}

struct BftConfig {
  std::uint32_t n = 4;

  /// F — number of arbitrary faults the run must tolerate.  Quorums are
  /// n − F.  Must satisfy f ≤ max_tolerated_faults(n).
  std::uint32_t f = 1;

  /// Certificate-growth control: prune (digest) the certificates of NEXT
  /// messages nested inside outgoing certificates (see message.hpp).  The
  /// §5.1 checks never inspect those bodies, so pruning is behaviour-
  /// preserving; turning it off reproduces the naive exponential growth
  /// (experiment E6).
  bool prune_nested_next = true;

  /// Certification-service bound override.  By default C = ⌊(n−1)/3⌋
  /// (footnote 2); deployments with a stronger external certification
  /// service may raise it, up to the protocol's own ⌊(n−1)/2⌋ limit.
  std::optional<std::uint32_t> certification_bound;

  /// Certificate fast path: share one bounded LRU of verified signatures
  /// between the signature module and the certificate analyzer, so a
  /// member already verified (at ingress or inside an earlier certificate)
  /// is never re-verified by the signature scheme.  Observationally
  /// equivalent to verification without the cache — a hit requires the
  /// same signer, the same signed bytes (pinned by SHA-256) and a
  /// byte-identical signature.
  bool verify_cache = true;

  /// Entry bound of the verified-signature LRU.
  std::uint32_t verify_cache_capacity = 4096;

  /// Externally-owned verified-signature cache.  When set (and
  /// verify_cache is true) the process uses it instead of constructing a
  /// private one, so the cache — and its hit/miss statistics — survive
  /// across consensus instances.  The pipelined SMR replica shares one
  /// cache across all of its slots this way.  Must wrap the same
  /// underlying verifier the process is given.
  std::shared_ptr<crypto::CachingVerifier> shared_verify_cache;

  /// Parallel verification pool shared by the signature module and the
  /// certificate analyzer.  nullptr = verify serially on the actor's
  /// thread (the default, and the only configuration whose execution
  /// order is deterministic — the sim substrate uses a pool of size 0,
  /// which is synchronous, when it wants pool accounting).  One pool is
  /// typically shared by every process of a run.
  std::shared_ptr<crypto::VerifyPool> verify_pool;

  /// Egress staging hook (the batched-signing half of the staged ingest
  /// pipeline, docs/INGEST.md).  When non-null, send_signed offers every
  /// outgoing (core, certificate) pair to the hook BEFORE signing; a true
  /// return transfers ownership — the owner (the pipelined SMR replica,
  /// which installs a per-instance hook) signs, encodes and broadcasts
  /// the staged messages in staging order at the end of the current batch
  /// dispatch, in one signing pass over pooled encode buffers.  A false
  /// return must leave the arguments untouched: the process then signs
  /// and broadcasts inline, exactly as without a hook.  Since staged
  /// messages are flushed in staging order within the same dispatch,
  /// per-sender FIFO — all the protocol assumes of the network — is
  /// preserved, and the wire bytes are identical (signing is a pure
  /// function of core ‖ cert digest).
  std::function<bool(MessageCore&&, Certificate&&)> egress_stage;

  /// Period of the ◇M / faulty-coordinator poll.
  SimTime suspicion_poll_period = 10'000;

  fd::MutenessConfig muteness{};

  /// If true (default), a decided process halts, as in the paper.  When
  /// false, the process keeps running its detection modules after deciding
  /// (audit mode): late traffic is still authenticated and monitored, so
  /// every delivered misbehaviour is eventually recorded even if the group
  /// decided before the faulty frames landed.
  bool stop_on_decide = true;

  std::uint32_t quorum() const { return n - f; }

  void validate() const {
    MODUBFT_EXPECTS(n >= 2);
    MODUBFT_EXPECTS(f <= max_tolerated_faults(n, certification_bound));
  }
};

/// Vector Validity floor: the decided vector carries at least
/// ρ = n − 2F entries from correct processes (paper §1; ρ ≥ 1 follows from
/// the resilience bound).
inline std::uint32_t vector_validity_floor(const BftConfig& cfg) {
  return cfg.n - 2 * cfg.f;
}

}  // namespace modubft::bft
