// Classification of detected arbitrary failures (paper §2/§3 taxonomy).
//
// Every rejection by the detection modules carries the failure class that
// produced it; experiment E4 asserts each injected fault class is caught by
// the intended module, and the reliability property ("if p_i is correct and
// p_j ∈ faulty_i then p_j misbehaved") is tested by checking that correct
// processes never accumulate verdicts against correct peers.
#pragma once

#include <string>

namespace modubft::bft {

enum class FaultKind : std::uint8_t {
  kNone = 0,
  /// Signature module: the signature does not match the claimed sender.
  kBadSignature,
  /// Message bytes do not decode / violate the wire grammar.
  kMalformed,
  /// The identity field inside the message differs from the channel's
  /// actual sender.
  kIdentityMismatch,
  /// "Wrong time": the receipt event is not enabled in the sender's state
  /// machine (duplicates, skipped rounds, messages after DECIDE, ...).
  kOutOfOrder,
  /// "Right time, wrong message/content": enabled receipt event whose
  /// content is inconsistent (wrong vector, substituted message, ...).
  kWrongExpected,
  /// The attached certificate is not well-formed w.r.t. the message.
  kBadCertificate,
  /// Two conflicting signed messages from the same process for the same
  /// step (e.g. a coordinator signing two different vectors in one round).
  kEquivocation,
};

const char* fault_kind_name(FaultKind k);

/// Result of one validation step.
struct Verdict {
  bool valid = true;
  FaultKind kind = FaultKind::kNone;
  std::string detail;

  static Verdict ok() { return Verdict{}; }
  static Verdict fail(FaultKind kind, std::string detail) {
    return Verdict{false, kind, std::move(detail)};
  }

  explicit operator bool() const { return valid; }
};

}  // namespace modubft::bft
