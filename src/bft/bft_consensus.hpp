// The transformed protocol: Byzantine-resilient vector consensus (Fig 3).
//
// This is the Hurfin–Raynal protocol after applying the paper's
// transformation methodology.  Each BftProcess is the five-module
// composition of Figure 1:
//
//   * SignatureModule       — authenticates every frame, signs every send;
//   * MutenessModule        — ◇M suspicion of silent processes;
//   * NonMutenessModule     — Figure 4 monitors + the reliable faulty_i set;
//   * CertificationModule   — certificate variables and outgoing builds;
//   * the protocol itself   — Figure 3's INIT phase and round loop.
//
// Protocol outline:
//   INIT phase  — broadcast ⟨INIT(v_i), ∅⟩, gather n−F signed INITs into
//                 est_cert, producing the certified initial vector;
//   round r     — the coordinator proposes its vector with a CURRENT
//                 certified by est_cert ∪ next_cert; receivers adopt and
//                 relay the first valid CURRENT; n−F matching CURRENTs
//                 decide (DECIDE certified by current_cert); suspicion of
//                 the coordinator (◇M ∪ faulty), change-mind, or n−F NEXTs
//                 produce NEXT votes, and n−F NEXTs start round r+1.
//
// Guarantees under F ≤ min(⌊(n−1)/2⌋, C) arbitrary faults: Agreement,
// Termination, and Vector Validity with ≥ n−2F entries from correct
// processes.
#pragma once

#include <map>
#include <memory>
#include <optional>

#include "bft/modules.hpp"
#include "consensus/value.hpp"
#include "crypto/verify_cache.hpp"
#include "sim/actor.hpp"

namespace modubft::bft {

using consensus::VectorDecideFn;
using consensus::VectorDecision;

/// Per-process send accounting (experiments E3/E6).
struct SendStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t max_message_bytes = 0;
};

class BftProcess final : public sim::Actor {
 public:
  BftProcess(BftConfig config, Value proposal, const crypto::Signer* signer,
             std::shared_ptr<const crypto::Verifier> verifier,
             VectorDecideFn on_decide);

  void on_start(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, ProcessId from,
                  const Bytes& payload) override;
  void on_timer(sim::Context& ctx, std::uint64_t timer_id) override;

  bool decided() const { return decision_.has_value(); }
  const VectorDecision& decision() const { return *decision_; }
  Round current_round() const { return round_; }

  const NonMutenessModule& nonmuteness() const { return nonmute_; }
  const CertificationModule& certification() const { return cert_; }
  const SendStats& send_stats() const { return send_stats_; }

  /// The shared verified-signature cache, or nullptr when disabled
  /// (config.verify_cache = false).  Exposed for benchmarks and tests.
  const crypto::CachingVerifier* verify_cache() const { return vcache_.get(); }

 private:
  void begin_round(sim::Context& ctx, Round r);
  void process_validated(sim::Context& ctx, const MemberPtr& msg);
  void apply_init(sim::Context& ctx, const MemberPtr& msg);
  void apply_current(sim::Context& ctx, const MemberPtr& msg);
  void apply_next(sim::Context& ctx, const MemberPtr& msg);
  void check_suspicion(sim::Context& ctx);
  void check_change_mind(sim::Context& ctx);
  void check_round_exit(sim::Context& ctx);
  void send_signed(sim::Context& ctx, MessageCore core, Certificate cert);
  void send_next(sim::Context& ctx, Certificate cert);
  void decide(sim::Context& ctx, const VectorValue& vect, Round round);
  void drain_buffer(sim::Context& ctx);

  BftConfig config_;
  Value proposal_;

  // When enabled, both the signature module and the analyzer verify
  // through this one cache, so ingress checks and certificate-member
  // checks deduplicate against each other.
  std::shared_ptr<crypto::CachingVerifier> vcache_;
  SignatureModule signature_;
  MutenessModule muteness_;
  std::shared_ptr<const CertAnalyzer> analyzer_;
  NonMutenessModule nonmute_;
  CertificationModule cert_;
  VectorDecideFn on_decide_;

  // Protocol state (Fig 3 local variables).
  Round round_;          // 0 = INIT phase
  VectorValue est_vect_;
  bool sent_next_this_round_ = false;
  std::optional<VectorDecision> decision_;

  // The adopted CURRENT of this round (for equivocation evidence).
  MemberPtr adopted_current_;

  // FIFO-preserving buffer of future-round messages (footnote 5).
  std::map<std::uint32_t, std::vector<MemberPtr>> future_;

  SendStats send_stats_;
};

}  // namespace modubft::bft
