// Quorum-certified checkpoints: the signature discipline behind recovery.
//
// A checkpoint certificate binds a slot number to a SHA-256 digest of a
// replica's serialized state with a quorum of per-process signatures, the
// same detached-signature technique the BFT core's `Certificate` uses for
// round messages (paper §4.2: signed messages turn a claim into evidence a
// third party can check).  A recovering replica that never saw the
// checkpoint being formed can verify the certificate offline — against the
// public verifier only — and then trust any byte string whose digest the
// certificate covers.  That is what makes state transfer safe under
// Byzantine responders: the bytes come from an untrusted peer, the digest
// binding comes from a quorum.
//
// The certificate is deliberately *detached* from the BFT consensus
// message tree: checkpoints are not consensus proposals, they are claims
// about the result of consensus, so they carry their own domain-separated
// preimage ("MBFT-CKPT") and never collide with round-message signatures.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "common/serial.hpp"
#include "crypto/sha256.hpp"
#include "crypto/signature.hpp"

namespace modubft::bft {

/// Bytes a process signs to endorse "my state at `slot` hashes to
/// `digest`".  Domain-separated from every consensus preimage.
Bytes checkpoint_signing_bytes(std::uint64_t slot, const crypto::Digest& digest);

/// A quorum of signatures over one (slot, digest) pair.  `sigs` holds
/// (signer id, signature) pairs; validity is defined by
/// `verify_checkpoint_cert`, not by construction.
struct CheckpointCert {
  std::uint64_t slot = 0;
  crypto::Digest digest{};
  std::vector<std::pair<std::uint32_t, Bytes>> sigs;
};

/// Appends the certificate's signature list to `w` (the slot and digest
/// travel separately — they are bound into the enclosing message).
void write_cert_sigs(Writer& w,
                     const std::vector<std::pair<std::uint32_t, Bytes>>& sigs);

/// Reads a signature list written by write_cert_sigs.  Throws SerialError
/// if the list exceeds `max_sigs` or is malformed.
std::vector<std::pair<std::uint32_t, Bytes>> read_cert_sigs(
    Reader& r, std::uint32_t max_sigs);

/// True iff the certificate carries at least `quorum` *distinct* in-range
/// signers whose signatures verify over checkpoint_signing_bytes(slot,
/// digest).  A genesis certificate (slot 0) is vacuously valid with zero
/// signatures: every correct replica can recompute the empty-state digest
/// locally, so there is nothing a quorum needs to vouch for.
bool verify_checkpoint_cert(const CheckpointCert& cert,
                            const crypto::Verifier& verifier, std::uint32_t n,
                            std::uint32_t quorum);

}  // namespace modubft::bft
