#include "bft/modules.hpp"

#include "common/check.hpp"
#include "common/serial.hpp"

namespace modubft::bft {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kNone: return "none";
    case FaultKind::kBadSignature: return "bad-signature";
    case FaultKind::kMalformed: return "malformed";
    case FaultKind::kIdentityMismatch: return "identity-mismatch";
    case FaultKind::kOutOfOrder: return "out-of-order";
    case FaultKind::kWrongExpected: return "wrong-expected";
    case FaultKind::kBadCertificate: return "bad-certificate";
    case FaultKind::kEquivocation: return "equivocation";
  }
  return "?";
}

// ---------------------------------------------------------------- signature

SignatureModule::SignatureModule(
    const crypto::Signer* signer,
    std::shared_ptr<const crypto::Verifier> verifier,
    std::shared_ptr<crypto::VerifyPool> pool)
    : signer_(signer), verifier_(std::move(verifier)), pool_(std::move(pool)) {
  MODUBFT_EXPECTS(signer_ != nullptr);
  MODUBFT_EXPECTS(verifier_ != nullptr);
}

SignatureModule::Inbound SignatureModule::authenticate(
    ProcessId channel_from, const Bytes& frame) const {
  Inbound in;
  try {
    in.msg = decode_message(frame);
  } catch (const SerialError& e) {
    in.verdict = Verdict::fail(FaultKind::kMalformed,
                               std::string("undecodable frame: ") + e.what());
    return in;
  }
  // Canonical-form check: exactly one byte string encodes each message.
  // Without it, semantically-ignored bytes (e.g. the value slot of a null
  // vector entry) could carry covert variation through the signature
  // check, since signatures cover the re-encoded canonical form.
  if (encode_message(in.msg) != frame) {
    in.verdict = Verdict::fail(FaultKind::kMalformed,
                               "non-canonical message encoding");
    return in;
  }
  // The identity field must match the channel the message arrived on:
  // channels are point-to-point, so the transport sender is known.
  if (in.msg.core.sender != channel_from) {
    in.verdict = Verdict::fail(FaultKind::kIdentityMismatch,
                               "identity field does not match the channel");
    return in;
  }
  const auto verify_top = [this, &in] {
    return verifier_->verify(in.msg.core.sender,
                             signing_bytes(in.msg.core, in.msg.cert),
                             in.msg.sig);
  };
  if (!(pool_ ? pool_->verify_one(verify_top) : verify_top())) {
    in.verdict =
        Verdict::fail(FaultKind::kBadSignature, "signature verification failed");
    return in;
  }
  in.ok = true;
  return in;
}

SignedMessage SignatureModule::sign(MessageCore core, Certificate cert) const {
  SignedMessage msg;
  msg.core = std::move(core);
  msg.cert = std::move(cert);
  msg.sig = signer_->sign(signing_bytes(msg.core, msg.cert));
  return msg;
}

// ------------------------------------------------------------------ muteness

MutenessModule::MutenessModule(std::uint32_t n, ProcessId self,
                               fd::MutenessConfig config)
    : detector_(n, self, config) {}

void MutenessModule::on_protocol_message(ProcessId from, SimTime now) {
  detector_.on_protocol_message(from, now);
}

void MutenessModule::on_new_round(SimTime now) { detector_.on_new_round(now); }

bool MutenessModule::suspects(ProcessId q, SimTime now) {
  return detector_.suspects(q, now);
}

// -------------------------------------------------------------- non-muteness

NonMutenessModule::NonMutenessModule(
    std::uint32_t n, ProcessId self,
    std::shared_ptr<const CertAnalyzer> analyzer)
    : analyzer_(std::move(analyzer)) {
  MODUBFT_EXPECTS(analyzer_ != nullptr);
  (void)self;
  monitors_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    monitors_.emplace_back(ProcessId{i}, *analyzer_);
  }
}

Verdict NonMutenessModule::observe(ProcessId from, const SignedMessage& msg,
                                   SimTime now) {
  MODUBFT_EXPECTS(from.value < monitors_.size());
  Verdict v = monitors_[from.value].observe(msg);
  if (!v && v.kind != FaultKind::kNone) {
    declare_faulty(from, v.kind, v.detail, now);
  }
  return v;
}

void NonMutenessModule::declare_faulty(ProcessId culprit, FaultKind kind,
                                       std::string detail, SimTime now) {
  records_.push_back(FaultRecord{culprit, kind, detail, now});
  faulty_.insert(culprit);
}

// ------------------------------------------------------------- certification

CertificationModule::CertificationModule(const BftConfig& config)
    : config_(config) {}

void CertificationModule::add_init(MemberPtr m) {
  est_cert_.add(std::move(m));
}

void CertificationModule::add_init(const SignedMessage& m) {
  add_init(std::make_shared<const SignedMessage>(m));
}

void CertificationModule::adopt_est(const Certificate& cert) {
  est_cert_ = cert;  // shares members (and memoized digests) with the source
}

void CertificationModule::add_current(MemberPtr m) {
  current_cert_.add(std::move(m));
}

void CertificationModule::add_current(const SignedMessage& m) {
  add_current(std::make_shared<const SignedMessage>(m));
}

void CertificationModule::add_next(MemberPtr m) {
  next_cert_.add(std::move(m));
}

void CertificationModule::add_next(const SignedMessage& m) {
  add_next(std::make_shared<const SignedMessage>(m));
}

void CertificationModule::add_conflicting_current(MemberPtr m) {
  conflict_cert_.add(std::move(m));
}

void CertificationModule::add_conflicting_current(const SignedMessage& m) {
  add_conflicting_current(std::make_shared<const SignedMessage>(m));
}

void CertificationModule::reset_round() {
  next_cert_ = Certificate{};
  current_cert_ = Certificate{};
  conflict_cert_ = Certificate{};
  pruned_pool_.clear();
}

std::size_t CertificationModule::init_count() const {
  std::set<ProcessId> senders;
  for (const MemberPtr& m : est_cert_.members()) {
    if (m->core.kind == BftKind::kInit) senders.insert(m->core.sender);
  }
  return senders.size();
}

std::set<ProcessId> CertificationModule::rec_from() const {
  std::set<ProcessId> out;
  for (const MemberPtr& m : current_cert_.members()) out.insert(m->core.sender);
  for (const MemberPtr& m : next_cert_.members()) out.insert(m->core.sender);
  for (const MemberPtr& m : conflict_cert_.members()) out.insert(m->core.sender);
  return out;
}

MemberPtr CertificationModule::policy_member(const MemberPtr& m) const {
  // Pruning policy: the §5.1 checks only read the *cores* of NEXT messages
  // found inside certificates, so their own certificates can travel as
  // digests.  INITs have empty certificates and CURRENT bodies are needed
  // for adoption/relay chains, so both stay inline.
  if (!(config_.prune_nested_next && m->core.kind == BftKind::kNext &&
        !m->cert.empty() && !m->cert.pruned)) {
    return m;
  }
  auto [it, inserted] = pruned_pool_.try_emplace(m);
  if (inserted) {
    it->second = std::make_shared<const SignedMessage>(
        SignedMessage{m->core, prune(m->cert), m->sig});
  }
  return it->second;
}

Certificate CertificationModule::build(
    std::initializer_list<const Certificate*> parts) const {
  Certificate out;
  for (const Certificate* part : parts) {
    MODUBFT_EXPECTS(part != nullptr);
    MODUBFT_EXPECTS(!part->pruned);
    for (const MemberPtr& m : part->members()) {
      out.add(policy_member(m));
    }
  }
  return out;
}

Certificate CertificationModule::relay_of(const MemberPtr& adopted) const {
  Certificate out;
  out.add(adopted);  // the full adopted CURRENT, never pruned
  return out;
}

Certificate CertificationModule::relay_of(const SignedMessage& adopted) const {
  return relay_of(std::make_shared<const SignedMessage>(adopted));
}

}  // namespace modubft::bft
