// Certificate analyzer — the §5.1 well-formedness checks.
//
// "The correctness of a certificate can be verified at the recipient side,
// by a certificate analyzer."  This class implements every well-formedness
// predicate the paper defines, on top of the digest-chained signed-message
// representation:
//
//   est_wf(cert, v)        — cert witnesses the estimate vector v: either a
//                            quorum of INIT messages whose values are
//                            exactly v's non-null entries, or a single
//                            CURRENT message (an adoption chain) carrying v
//                            that is itself well-formed;
//   entry_wf(cert, r)      — cert witnesses legitimate entry into round r:
//                            a quorum of round-(r−1) NEXTs, or (relay case)
//                            one round-r CURRENT from r's coordinator that
//                            recursively witnesses it; round 1 needs no
//                            witness;
//   current_wf(msg)        — a CURRENT message is well-formed: coordinator
//                            form (est_wf + entry_wf) or relay form
//                            (exactly one nested CURRENT with equal round
//                            and vector, recursively well-formed);
//   decide_wf(msg)         — a quorum of well-formed round-r CURRENTs, all
//                            carrying the decided vector, from distinct
//                            senders;
//   next_wf(msg, state)    — one of the three justifications for sending
//                            NEXT holds and is compatible with the sender's
//                            monitored automaton state: suspicion (q0, no
//                            CURRENT evidence), change-mind (q1, ≥1 CURRENT
//                            and quorum REC_FROM), or end-of-round (quorum
//                            of same-round NEXTs);
//   init_wf(msg)           — INITs carry an empty certificate (they are the
//                            base of every chain).
//
// Nested member signatures are verified here (the analyzer *is* the
// "reliable certification" checker: falsifying any member is detected).
#pragma once

#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "bft/message.hpp"
#include "bft/verdict.hpp"
#include "crypto/signature.hpp"
#include "crypto/verify_cache.hpp"
#include "crypto/verify_pool.hpp"

namespace modubft::bft {

/// The sender automaton sub-state the receiver tracks per peer, per round
/// (paper Figure 2/4: q0 = not voted, q1 = voted CURRENT, q2 = voted NEXT).
enum class PeerPhase : std::uint8_t { kQ0, kQ1, kQ2 };

class CertAnalyzer {
 public:
  CertAnalyzer(std::uint32_t n, std::uint32_t quorum,
               std::shared_ptr<const crypto::Verifier> verifier,
               std::shared_ptr<crypto::VerifyPool> pool = nullptr);

  /// Verifies the top-level signature of `msg` (core ‖ cert digest).
  bool signature_ok(const SignedMessage& msg) const;

  /// Pre-verifies every member of `cert` (recursively) through the verify
  /// pool, populating the shared CachingVerifier so the subsequent
  /// well-formedness walk hits the cache instead of running signature
  /// arithmetic serially.  Blocks until the batch completed.
  ///
  /// Memoization discipline: the Certificate digest memos are not
  /// synchronized, so this method materializes every signing digest on the
  /// calling thread before dispatching; pool jobs then only read memoized
  /// state.  No-op unless both a pool and a CachingVerifier are attached.
  /// Observationally equivalent to not warming: the cache stores exactly
  /// what direct verification would compute.
  void warm_certificate(const Certificate& cert) const;

  Verdict init_wf(const SignedMessage& msg) const;
  Verdict current_wf(const SignedMessage& msg) const;
  Verdict next_wf(const SignedMessage& msg, PeerPhase sender_phase) const;
  Verdict decide_wf(const SignedMessage& msg) const;

  /// Exposed for tests: the building-block predicates.
  Verdict est_wf(const Certificate& cert, const VectorValue& v) const;
  Verdict entry_wf(const Certificate& cert, Round r) const;

  /// Follows the adoption chain of a well-formed CURRENT down to the
  /// coordinator-signed message at its base (used for equivocation
  /// evidence).  Returns nullptr if the chain is not intact.
  const SignedMessage* chain_base(const SignedMessage& current) const;

  std::uint32_t quorum() const { return quorum_; }
  std::uint32_t n() const { return n_; }

 private:
  Verdict current_wf_depth(const SignedMessage& msg, std::uint32_t depth) const;
  Verdict est_wf_depth(const Certificate& cert, const VectorValue& v,
                       std::uint32_t depth) const;
  Verdict entry_wf_depth(const Certificate& cert, Round r,
                         std::uint32_t depth) const;
  /// Verifies the signature of `parent.member(i)`.  When the verifier is a
  /// CachingVerifier, the lookup uses the parent's memoized signing digest
  /// for the member, so a previously-verified member costs one hash-map
  /// probe — no re-encoding, no hashing, no signature arithmetic.
  bool member_signature_ok(const Certificate& parent, std::size_t i) const;

  void collect_warm_jobs(
      const Certificate& cert, std::uint32_t depth,
      std::vector<crypto::VerifyPool::Job>* jobs,
      std::set<std::pair<std::uint32_t, crypto::Digest>>* seen) const;

  std::uint32_t n_;
  std::uint32_t quorum_;
  std::shared_ptr<const crypto::Verifier> verifier_;
  std::shared_ptr<const crypto::CachingVerifier> cache_;  // verifier_, typed
  std::shared_ptr<crypto::VerifyPool> pool_;
};

/// Rotating-coordinator rule shared with the crash protocol.
ProcessId bft_coordinator_of(Round r, std::uint32_t n);

}  // namespace modubft::bft
