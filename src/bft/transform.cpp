#include "bft/transform.hpp"

#include "common/check.hpp"
#include "common/log.hpp"

namespace modubft::bft {

TransformedActor::TransformedActor(TransformConfig config,
                                   const crypto::Signer* signer,
                                   std::shared_ptr<const crypto::Verifier> verifier,
                                   std::unique_ptr<RoundProtocol> protocol,
                                   PeerModelFactory model_factory)
    : config_(config),
      signature_(signer, std::move(verifier)),
      muteness_(config.n, signer->id(), config.muteness),
      protocol_(std::move(protocol)) {
  MODUBFT_EXPECTS(config_.n >= 2);
  MODUBFT_EXPECTS(protocol_ != nullptr);
  MODUBFT_EXPECTS(model_factory != nullptr);
  models_.reserve(config_.n);
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    models_.push_back(model_factory(ProcessId{i}));
    MODUBFT_EXPECTS(models_.back() != nullptr);
  }
}

bool TransformedActor::suspects_mute(ProcessId q, SimTime now) {
  return muteness_.suspects(q, now);
}

void TransformedActor::emit(sim::Context& ctx, MessageCore core,
                            Certificate cert) {
  SignedMessage msg = signature_.sign(std::move(core), std::move(cert));
  ctx.broadcast(encode_message(msg));
}

void TransformedActor::convict(ProcessId culprit, FaultKind kind,
                               std::string detail, SimTime now) {
  records_.push_back(FaultRecord{culprit, kind, detail, now});
  faulty_.insert(culprit);
}

void TransformedActor::on_start(sim::Context& ctx) {
  protocol_->rp_start(*this, ctx);
  if (protocol_->rp_done()) ctx.stop();
}

void TransformedActor::on_message(sim::Context& ctx, ProcessId from,
                                  const Bytes& payload) {
  if (protocol_->rp_done()) return;

  SignatureModule::Inbound in = signature_.authenticate(from, payload);
  if (!in.ok) {
    convict(from, in.verdict.kind, in.verdict.detail, ctx.now());
    return;
  }
  muteness_.on_protocol_message(from, ctx.now());
  if (is_faulty(from)) return;

  const SignedMessage& msg = in.msg;
  if (msg.core.round.value > protocol_->rp_round().value) {
    if (msg.core.round.value - protocol_->rp_round().value <=
        config_.max_buffered_rounds) {
      future_[msg.core.round.value].push_back(msg);
    }
    return;
  }
  deliver_validated(ctx, msg);
  drain_ready(ctx);
  if (protocol_->rp_done()) ctx.stop();
}

void TransformedActor::deliver_validated(sim::Context& ctx,
                                         const SignedMessage& msg) {
  Verdict v = models_[msg.core.sender.value]->observe(msg);
  if (!v) {
    if (v.kind != FaultKind::kNone) {
      log_debug("transform ", ctx.id(), " convicts ", msg.core.sender, ": ",
                v.detail);
      convict(msg.core.sender, v.kind, v.detail, ctx.now());
    }
    return;
  }
  protocol_->rp_deliver(*this, ctx, msg);
}

void TransformedActor::drain_ready(sim::Context& ctx) {
  // Deliver buffered rounds the protocol has since reached; each delivery
  // may advance it further.
  while (!protocol_->rp_done()) {
    const std::uint32_t round = protocol_->rp_round().value;
    bool progressed = false;
    for (auto it = future_.begin();
         it != future_.end() && it->first <= round;) {
      std::vector<SignedMessage> pending = std::move(it->second);
      it = future_.erase(it);
      for (const SignedMessage& msg : pending) {
        if (protocol_->rp_done()) return;
        if (is_faulty(msg.core.sender)) continue;
        deliver_validated(ctx, msg);
      }
      progressed = true;
      break;  // round may have changed; restart the scan
    }
    if (!progressed) return;
  }
}

void TransformedActor::on_timer(sim::Context& ctx, std::uint64_t timer_id) {
  if (protocol_->rp_done()) return;
  protocol_->rp_timer(*this, ctx, timer_id);
  drain_ready(ctx);
  if (protocol_->rp_done()) ctx.stop();
}

}  // namespace modubft::bft
