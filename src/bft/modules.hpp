// The detection/certification modules of the transformed process (Fig 1).
//
// An incoming message m traverses, in order:
//   signature module → muteness FD module → non-muteness FD module →
//   certification module → round-based protocol module,
// and an outgoing message m' traverses certification then signature on the
// way to the network.  Each class below encapsulates exactly one of those
// responsibilities; the BftProcess actor (bft_consensus.hpp) is the
// composition.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "bft/analyzer.hpp"
#include "bft/config.hpp"
#include "bft/monitor.hpp"
#include "fd/muteness_fd.hpp"

namespace modubft::bft {

/// One detected-failure record (for the audit trail and experiment E4).
struct FaultRecord {
  ProcessId culprit;
  FaultKind kind = FaultKind::kNone;
  std::string detail;
  SimTime time = 0;
};

/// Signature module: verifies incoming envelopes and signs outgoing ones.
/// "If the signature of the message is inconsistent with the identity field
/// contained in the message, the message is discarded and its sender ...
/// is passed to the non-muteness failure detection module."
class SignatureModule {
 public:
  /// `pool` (optional) routes the ingress signature check through the
  /// verification pool's accounting.  The check itself stays on the
  /// calling thread — a single top-level verification gains nothing from
  /// a dispatch — but certificate members warmed by the analyzer and
  /// ingress checks then share one measurable verification budget.
  SignatureModule(const crypto::Signer* signer,
                  std::shared_ptr<const crypto::Verifier> verifier,
                  std::shared_ptr<crypto::VerifyPool> pool = nullptr);

  /// Decodes and authenticates a raw frame from channel-peer `channel_from`.
  /// On success returns the message; on failure returns a Verdict naming the
  /// culprit (the channel sender — channels authenticate the transport
  /// identity, the signature authenticates the claimed identity).
  struct Inbound {
    bool ok = false;
    SignedMessage msg;
    Verdict verdict;  // meaningful when !ok
  };
  Inbound authenticate(ProcessId channel_from, const Bytes& frame) const;

  /// Signs core+cert into a complete wire message.
  SignedMessage sign(MessageCore core, Certificate cert) const;

 private:
  const crypto::Signer* signer_;
  std::shared_ptr<const crypto::Verifier> verifier_;
  std::shared_ptr<crypto::VerifyPool> pool_;
};

/// Muteness module: owns the ◇M detector and the suspected set.
class MutenessModule {
 public:
  MutenessModule(std::uint32_t n, ProcessId self, fd::MutenessConfig config);

  void on_protocol_message(ProcessId from, SimTime now);
  void on_new_round(SimTime now);
  bool suspects(ProcessId q, SimTime now);

  fd::MutenessDetector& detector() { return detector_; }

 private:
  fd::MutenessDetector detector_;
};

/// Non-muteness module: one Figure 4 monitor per peer plus the reliable
/// `faulty_i` set.  The protocol module may only *read* the set.
class NonMutenessModule {
 public:
  NonMutenessModule(std::uint32_t n, ProcessId self,
                    std::shared_ptr<const CertAnalyzer> analyzer);

  /// Runs the peer's monitor on `msg`.  A failed verdict adds the peer to
  /// faulty_i and appends an audit record.
  Verdict observe(ProcessId from, const SignedMessage& msg, SimTime now);

  /// Adds `culprit` to faulty_i with explicit evidence gathered outside the
  /// monitors (e.g. signature failures, equivocation proofs).
  void declare_faulty(ProcessId culprit, FaultKind kind, std::string detail,
                      SimTime now);

  bool is_faulty(ProcessId q) const { return faulty_.count(q) > 0; }
  const std::set<ProcessId>& faulty_set() const { return faulty_; }
  const std::vector<FaultRecord>& records() const { return records_; }
  const PeerMonitor& monitor(ProcessId q) const { return monitors_[q.value]; }

 private:
  std::shared_ptr<const CertAnalyzer> analyzer_;
  std::vector<PeerMonitor> monitors_;
  std::set<ProcessId> faulty_;
  std::vector<FaultRecord> records_;
};

/// Reliable certification module: stores the certificate variables
/// (est_cert, next_cert, current_cert) and builds outgoing certificates,
/// applying the nested-NEXT pruning policy.
///
/// Assembly is copy-free: certificate members are shared immutable
/// messages (MemberPtr), so adopting a certificate, building an outgoing
/// one and wrapping a relay all share structure instead of deep-copying.
/// Pruned variants produced by the policy are interned per member, so the
/// same vote pruned into many outgoing certificates is materialized once.
class CertificationModule {
 public:
  explicit CertificationModule(const BftConfig& config);

  // --- certificate variables (paper Fig 3 boxed assignments) ---
  void add_init(MemberPtr m);                   // line 8
  void add_init(const SignedMessage& m);
  void adopt_est(const Certificate& cert);      // line 17
  void add_current(MemberPtr m);                // line 16
  void add_current(const SignedMessage& m);
  void add_next(MemberPtr m);                   // line 27
  void add_next(const SignedMessage& m);
  void reset_round();                           // line 13

  /// A well-formed CURRENT whose vector conflicts with the adopted one
  /// (equivocation evidence).  It is a received vote — it counts toward
  /// REC_FROM and travels in NEXT justifications — but it must not count
  /// toward the decision quorum.
  void add_conflicting_current(MemberPtr m);
  void add_conflicting_current(const SignedMessage& m);
  const Certificate& conflict_cert() const { return conflict_cert_; }

  const Certificate& est_cert() const { return est_cert_; }
  const Certificate& next_cert() const { return next_cert_; }
  const Certificate& current_cert() const { return current_cert_; }

  std::size_t init_count() const;
  std::size_t current_count() const { return current_cert_.size(); }
  std::size_t next_count() const { return next_cert_.size(); }

  /// Distinct round-r vote senders across current_cert ∪ next_cert — the
  /// REC_FROM_i replacement of §5.1.
  std::set<ProcessId> rec_from() const;

  /// Concatenates certificates into an outgoing one, pruning nested NEXT
  /// certificates per the configured policy.  Members are shared, not
  /// copied; pruned variants come from the interning pool.
  Certificate build(std::initializer_list<const Certificate*> parts) const;

  /// Wraps a single adopted message as a relay certificate (line 19).
  Certificate relay_of(const MemberPtr& adopted) const;
  Certificate relay_of(const SignedMessage& adopted) const;

 private:
  MemberPtr policy_member(const MemberPtr& m) const;

  const BftConfig& config_;
  Certificate est_cert_;
  Certificate next_cert_;
  Certificate current_cert_;
  Certificate conflict_cert_;
  /// Interned pruned variants, keyed by the original member (the key keeps
  /// the original alive, so pointer identity cannot be recycled).  Cleared
  /// at round reset together with the votes it prunes.
  mutable std::map<MemberPtr, MemberPtr> pruned_pool_;
};

}  // namespace modubft::bft
