#include "bft/monitor.hpp"

namespace modubft::bft {

PeerMonitor::PeerMonitor(ProcessId peer, const CertAnalyzer& analyzer)
    : peer_(peer), analyzer_(analyzer) {}

Verdict PeerMonitor::fault(FaultKind kind, std::string detail) {
  state_ = State::kFaulty;
  return Verdict::fail(kind, std::move(detail));
}

Verdict PeerMonitor::observe(const SignedMessage& msg) {
  if (state_ == State::kFaulty) {
    // Already declared faulty; discard silently (no new accusation needed).
    return Verdict::fail(FaultKind::kNone, "peer already faulty");
  }
  if (state_ == State::kFinal) {
    return fault(FaultKind::kOutOfOrder, "message after DECIDE");
  }

  switch (msg.core.kind) {
    case BftKind::kInit:
      return observe_init(msg);
    case BftKind::kDecide:
      return observe_decide(msg);
    case BftKind::kCurrent:
    case BftKind::kNext:
      return observe_round_message(msg);
  }
  return fault(FaultKind::kMalformed, "unknown message kind");
}

Verdict PeerMonitor::observe_init(const SignedMessage& msg) {
  if (state_ != State::kStart) {
    return fault(FaultKind::kOutOfOrder, "duplicate INIT");
  }
  if (Verdict v = analyzer_.init_wf(msg); !v) {
    state_ = State::kFaulty;
    return v;
  }
  state_ = State::kInRound;
  round_ = Round{1};
  phase_ = PeerPhase::kQ0;
  return Verdict::ok();
}

Verdict PeerMonitor::observe_decide(const SignedMessage& msg) {
  // The DECIDE-relay task runs concurrently with the round task (Fig 3
  // line 2), so a DECIDE is enabled in every non-terminal state, including
  // start.  Its certificate carries the full justification.
  if (Verdict v = analyzer_.decide_wf(msg); !v) {
    state_ = State::kFaulty;
    return v;
  }
  state_ = State::kFinal;
  return Verdict::ok();
}

Verdict PeerMonitor::observe_round_message(const SignedMessage& msg) {
  if (state_ == State::kStart) {
    return fault(FaultKind::kOutOfOrder,
                 "round message before INIT (FIFO violation)");
  }
  const Round r = msg.core.round;

  if (r < round_) {
    return fault(FaultKind::kOutOfOrder, "message for an already-left round");
  }
  if (r > round_) {
    // A correct process leaves round round_ only after voting NEXT (q2) and
    // advances one round at a time; its broadcasts reach us in FIFO order.
    if (phase_ != PeerPhase::kQ2) {
      return fault(FaultKind::kOutOfOrder,
                   "entered a new round without voting NEXT");
    }
    if (r.value != round_.value + 1) {
      return fault(FaultKind::kOutOfOrder, "skipped a round");
    }
    round_ = r;
    phase_ = PeerPhase::kQ0;
  }

  if (msg.core.kind == BftKind::kCurrent) {
    if (phase_ != PeerPhase::kQ0) {
      return fault(FaultKind::kOutOfOrder,
                   phase_ == PeerPhase::kQ1 ? "duplicate CURRENT in one round"
                                            : "CURRENT after NEXT");
    }
    if (Verdict v = analyzer_.current_wf(msg); !v) {
      state_ = State::kFaulty;
      return v;
    }
    phase_ = PeerPhase::kQ1;
    return Verdict::ok();
  }

  // NEXT.  The program text (Fig 3 line 12) makes the coordinator open its
  // own round with a CURRENT unconditionally, so a coordinator whose first
  // vote of its round is NEXT substituted a message.
  if (phase_ == PeerPhase::kQ0 &&
      bft_coordinator_of(r, analyzer_.n()) == peer_) {
    return fault(FaultKind::kWrongExpected,
                 "coordinator's first vote in its round must be CURRENT");
  }
  if (Verdict v = analyzer_.next_wf(msg, phase_); !v) {
    state_ = State::kFaulty;
    return v;
  }
  phase_ = PeerPhase::kQ2;
  return Verdict::ok();
}

}  // namespace modubft::bft
