// Certified, signed protocol messages (paper §3 and §5.1).
//
// Every message of the transformed protocol is a SignedMessage:
//
//   core  — kind, sender, round, and value payload (an INIT's proposed
//           value, or a CURRENT/DECIDE's estimate *vector*);
//   cert  — a Certificate: a set of signed messages witnessing the core's
//           values and the correctness of the decision to send it;
//   sig   — the sender's signature.
//
// Certificates nest (a CURRENT's certificate contains NEXT messages whose
// certificates contain earlier NEXTs, ...).  Two engineering decisions make
// this sound and tractable:
//
//  1. Digest-chained signatures.  The signature covers
//     encode(core) ‖ cert_digest(cert), where cert_digest reduces a
//     certificate to a SHA-256 over its members' (core, cert_digest, sig)
//     triples.  The digest of a certificate is therefore independent of
//     whether nested certificates are carried inline or pruned to their
//     digest, so deep certificate bodies can be dropped from the wire
//     without breaking any signature, while collision resistance pins
//     their contents.  This implements the paper's "certificates cannot be
//     corrupted" assumption.
//
//  2. Pruning policy.  The §5.1 well-formedness checks never look inside
//     the certificate of a NEXT that appears *within* another certificate
//     (only its core — sender and round — matters).  The certification
//     module may therefore replace those nested NEXT certificates with
//     digests, turning exponential growth into linear (experiment E6
//     measures both modes).
//
// Decoding is fully defensive: Byzantine senders control these bytes, so
// depth and cardinality are capped and every failure throws SerialError,
// which the non-muteness module converts into a "faulty sender" verdict.
#pragma once

#include <initializer_list>
#include <memory>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/serial.hpp"
#include "consensus/value.hpp"
#include "crypto/sha256.hpp"
#include "crypto/signature.hpp"

namespace modubft::bft {

using consensus::Value;

/// The estimate vector (paper: est_vect, one entry per process; nullopt is
/// the paper's "null").
using VectorValue = std::vector<std::optional<Value>>;

enum class BftKind : std::uint8_t {
  kInit = 1,     // preliminary phase: proposed value
  kCurrent = 2,  // vote to decide on the carried estimate vector
  kNext = 3,     // vote to move to the next round
  kDecide = 4,   // decision announcement
};

const char* kind_name(BftKind k);

struct SignedMessage;

/// Shared-immutable handle to a certificate member.  Certificates built
/// from other certificates (build / relay_of / adopt_est) share member
/// storage instead of deep-copying, and a member reached through a
/// Certificate can never be mutated in place — which is what makes the
/// digest memoization below sound.
using MemberPtr = std::shared_ptr<const SignedMessage>;

/// A certificate: either an inline set of signed messages, or (pruned) just
/// the SHA-256 digest of that set's canonical form.
///
/// Members are held behind `shared_ptr<const SignedMessage>` and mutated
/// only through the narrow API below (`add`, `replace`, `mutate_member`),
/// every path of which drops the memoized digests.  Two caches ride on that
/// immutability:
///
///   * the certificate's own canonical digest (`cert_digest` becomes O(1)
///     for an already-hashed member set — `signing_bytes` and `prune` hit
///     it on every call);
///   * per-member signing digests — SHA-256(encode_core(core) ‖
///     cert_digest(cert)) — the key under which the verified-signature
///     cache (crypto::CachingVerifier) looks a member up without rehashing.
///
/// Caches are not synchronized: a certificate is owned by one actor at a
/// time, like all protocol state.  The wire format is untouched — caches
/// never travel, and encoding is byte-for-byte what it always was.
class Certificate {
 public:
  bool pruned = false;
  crypto::Digest digest{};  // meaningful iff pruned

  Certificate() = default;

  bool empty() const { return !pruned && members_.empty(); }
  static Certificate empty_cert() { return Certificate{}; }

  /// Builds an inline certificate from copies of the given messages.
  static Certificate of(std::initializer_list<SignedMessage> members);

  const std::vector<MemberPtr>& members() const { return members_; }
  std::size_t size() const { return members_.size(); }
  const SignedMessage& member(std::size_t i) const { return *members_[i]; }
  const MemberPtr& member_ptr(std::size_t i) const { return members_[i]; }

  void reserve(std::size_t n) { members_.reserve(n); }

  /// Appends a member (copy-free for the MemberPtr overload).
  void add(SignedMessage m);
  void add(MemberPtr m);

  /// Replaces member `i` wholesale, invalidating the memoized digests.
  void replace(std::size_t i, SignedMessage m);

  /// Rebuilds member `i` as a mutated copy — the only way to "edit" a
  /// member (used by tamper tests).  Invalidates the memoized digests.
  template <typename Fn>
  void mutate_member(std::size_t i, Fn&& fn) {
    SignedMessage copy = member(i);
    fn(copy);
    replace(i, std::move(copy));
  }

  /// Drops the memoized digests of this certificate (not of nested ones).
  /// Exposed so benchmarks can measure the cold path.
  void invalidate_digests();

  /// True iff the canonical digest of an inline member set is memoized
  /// (always false for pruned certificates, whose digest is explicit).
  bool digest_cached() const { return digest_cache_.has_value(); }

  /// Memoized canonical digest of the inline member set.
  const crypto::Digest& inline_digest() const;

  /// Memoized SHA-256 of member i's signing bytes — the exact preimage its
  /// signature covers, and the verified-signature cache key.
  const crypto::Digest& member_signing_digest(std::size_t i) const;

 private:
  std::vector<MemberPtr> members_;
  mutable std::optional<crypto::Digest> digest_cache_;
  mutable std::vector<std::optional<crypto::Digest>> member_sig_digests_;
};

/// The signed part of a message, minus certificate and signature.
struct MessageCore {
  BftKind kind = BftKind::kInit;
  ProcessId sender;
  Round round;          // INIT uses round 0
  Value init_value = 0; // kInit only
  VectorValue est;      // kCurrent / kDecide only

  bool operator==(const MessageCore& other) const;
};

/// A complete wire message: core + certificate + signature over
/// encode_core(core) ‖ cert_digest(cert).
struct SignedMessage {
  MessageCore core;
  Certificate cert;
  crypto::Signature sig;
};

/// Canonical encoding of a core (the first half of the signing preimage).
Bytes encode_core(const MessageCore& core);

/// Canonical digest of a certificate.  Invariant under pruning of nested
/// certificates: a pruned certificate and the inline certificate it was
/// pruned from have equal digests.  O(1) for a certificate whose member set
/// has already been hashed (the digest is memoized inside Certificate).
crypto::Digest cert_digest(const Certificate& cert);

/// The exact byte string a signature covers.
Bytes signing_bytes(const MessageCore& core, const Certificate& cert);

/// Returns a pruned copy of `cert` (digest only).
Certificate prune(const Certificate& cert);

/// Full wire encoding of a SignedMessage.
Bytes encode_message(const SignedMessage& msg);

/// Appends the wire encoding of `msg` to `w` — byte-identical to
/// concatenating encode_message(msg).  The zero-copy egress path encodes
/// straight into a pooled buffer (slot envelope + message in one Writer)
/// instead of materializing the message and copying it into a wrapper.
void encode_message(const SignedMessage& msg, Writer& w);

/// Limits applied while decoding adversarial input.
struct DecodeLimits {
  std::uint32_t max_depth = 32;          // certificate nesting
  std::uint32_t max_members = 4096;      // per certificate
  std::uint32_t max_vector = 4096;       // estimate-vector length
  std::uint32_t max_sig_bytes = 1024;
  /// Whole-frame ceiling, checked before any parsing: a hostile peer
  /// cannot make the decoder walk an arbitrarily large buffer.
  std::uint32_t max_frame_bytes = 1u << 22;
};

/// Decodes a SignedMessage; throws SerialError on any malformed input.
SignedMessage decode_message(const Bytes& buf, const DecodeLimits& limits = {});

/// Non-throwing decode for boundaries that face raw wire bytes (the
/// safety auditor's tap, the mutation fuzzer's oracle, tools).  Any
/// malformed input — truncation, out-of-range fields, inconsistent
/// lengths, exceeded caps — lands in `error` as a typed outcome instead
/// of an exception; nothing else escapes.
struct DecodeOutcome {
  bool ok = false;
  SignedMessage msg;      // meaningful iff ok
  std::string error;      // meaningful iff !ok
  explicit operator bool() const { return ok; }
};
DecodeOutcome try_decode_message(const Bytes& buf,
                                 const DecodeLimits& limits = {});

/// Byte size of the encoded form (for the E6 size experiments).  Computed
/// arithmetically from the structure — no throwaway encode is materialized.
std::size_t encoded_size(const SignedMessage& msg);

}  // namespace modubft::bft
