#include "bft/bft_consensus.hpp"

#include "common/check.hpp"
#include "common/log.hpp"

namespace modubft::bft {

BftProcess::BftProcess(BftConfig config, Value proposal,
                       const crypto::Signer* signer,
                       std::shared_ptr<const crypto::Verifier> verifier,
                       VectorDecideFn on_decide)
    : config_(config),
      proposal_(proposal),
      vcache_(!config.verify_cache ? nullptr
              : config.shared_verify_cache
                  ? config.shared_verify_cache
                  : std::make_shared<crypto::CachingVerifier>(
                        verifier, config.verify_cache_capacity)),
      signature_(signer,
                 vcache_ ? std::shared_ptr<const crypto::Verifier>(vcache_)
                         : verifier,
                 config.verify_pool),
      muteness_(config.n, signer->id(), config.muteness),
      analyzer_(std::make_shared<CertAnalyzer>(
          config.n, config.quorum(),
          vcache_ ? std::shared_ptr<const crypto::Verifier>(vcache_)
                  : verifier,
          config.verify_pool)),
      nonmute_(config.n, signer->id(), analyzer_),
      cert_(config_),
      on_decide_(std::move(on_decide)) {
  config_.validate();
  est_vect_.assign(config_.n, std::nullopt);
}

void BftProcess::send_signed(sim::Context& ctx, MessageCore core,
                             Certificate cert) {
  // Staged egress: the owner takes (core, cert) and performs the batched
  // sign+encode+broadcast at the end of the dispatch.  A false return
  // leaves both arguments intact (the hook contract) and we proceed
  // inline.  Staged sends are accounted by the owner (IngestStats), not
  // in send_stats_ — the instance never sees the encoded frame.
  if (config_.egress_stage &&
      config_.egress_stage(std::move(core), std::move(cert))) {
    return;
  }
  SignedMessage msg = signature_.sign(std::move(core), std::move(cert));
  Bytes frame = encode_message(msg);
  send_stats_.messages += ctx.n();
  send_stats_.bytes += static_cast<std::uint64_t>(frame.size()) * ctx.n();
  send_stats_.max_message_bytes =
      std::max<std::uint64_t>(send_stats_.max_message_bytes, frame.size());
  ctx.broadcast(frame);
}

void BftProcess::on_start(sim::Context& ctx) {
  // Fig 3 lines 4-5: null vector, broadcast the signed INIT.
  MessageCore init;
  init.kind = BftKind::kInit;
  init.sender = ctx.id();
  init.round = Round{0};
  init.init_value = proposal_;
  send_signed(ctx, std::move(init), Certificate{});
  ctx.set_timer(config_.suspicion_poll_period);
}

void BftProcess::on_message(sim::Context& ctx, ProcessId from,
                            const Bytes& payload) {
  // With stop_on_decide the runtime halts us at decision time anyway; in
  // audit mode we keep authenticating and monitoring late traffic.
  if (decided() && config_.stop_on_decide) return;

  // Signature module (ingress).
  SignatureModule::Inbound in = signature_.authenticate(from, payload);
  if (!in.ok) {
    nonmute_.declare_faulty(from, in.verdict.kind, in.verdict.detail,
                            ctx.now());
    return;
  }

  // Muteness module: any authentic protocol message counts as activity.
  muteness_.on_protocol_message(from, ctx.now());

  // Messages already attributed to faulty processes are discarded.
  if (nonmute_.is_faulty(from)) return;

  // Parallel fast path: pre-verify the certificate's members through the
  // pool before the serial well-formedness walk below touches them.  The
  // analyzer's checks then hit the shared cache.  No-op without a pool.
  if (config_.verify_pool && !in.msg.cert.empty()) {
    analyzer_->warm_certificate(in.msg.cert);
  }

  // From here on the message is shared immutable state: certificates built
  // from it hold this same allocation instead of deep-copying.
  MemberPtr msg = std::make_shared<const SignedMessage>(std::move(in.msg));
  switch (msg->core.kind) {
    case BftKind::kInit:
    case BftKind::kDecide:
      // Validated immediately: INIT starts the peer's automaton and DECIDE
      // is enabled in every state (the concurrent relay task).
      process_validated(ctx, msg);
      return;
    case BftKind::kCurrent:
    case BftKind::kNext:
      if (msg->core.round.value > round_.value) {
        // Future round: buffer until our own quorum evidence legitimizes it
        // (footnote 5 adapted to the arbitrary-failure setting).  Bounded
        // against Byzantine flooding: honest processes are never more than
        // a handful of rounds ahead and send O(1) votes per round, so the
        // caps below only ever drop hostile traffic.
        constexpr std::uint32_t kMaxRoundsAhead = 1024;
        constexpr std::size_t kMaxBufferedPerRound = 4096;
        if (msg->core.round.value - round_.value > kMaxRoundsAhead) return;
        std::vector<MemberPtr>& slot = future_[msg->core.round.value];
        if (slot.size() >= kMaxBufferedPerRound) return;
        slot.push_back(std::move(msg));
        return;
      }
      process_validated(ctx, msg);
      return;
  }
}

void BftProcess::process_validated(sim::Context& ctx, const MemberPtr& msg) {
  // Non-muteness module: run the sender's Figure 4 monitor.
  Verdict v = nonmute_.observe(msg->core.sender, *msg, ctx.now());
  if (!v) {
    if (v.kind != FaultKind::kNone) {
      log_debug("BFT ", ctx.id(), " declares ", msg->core.sender,
                " faulty: ", fault_kind_name(v.kind), " — ", v.detail);
      // Losing the coordinator to the faulty set can unblock us right away.
      check_suspicion(ctx);
    }
    return;
  }

  switch (msg->core.kind) {
    case BftKind::kInit:
      apply_init(ctx, msg);
      break;
    case BftKind::kCurrent:
      apply_current(ctx, msg);
      break;
    case BftKind::kNext:
      apply_next(ctx, msg);
      break;
    case BftKind::kDecide: {
      if (decided()) break;  // audit mode: observed, nothing more to do
      // Fig 3 lines 2-3: relay with the same certificate, then decide.
      MessageCore relay;
      relay.kind = BftKind::kDecide;
      relay.sender = ctx.id();
      relay.round = msg->core.round;
      relay.est = msg->core.est;
      send_signed(ctx, std::move(relay), msg->cert);
      decide(ctx, msg->core.est, msg->core.round);
      break;
    }
  }
}

void BftProcess::apply_init(sim::Context& ctx, const MemberPtr& msg) {
  if (decided()) return;
  if (round_.value != 0) return;  // INIT phase is over; straggler INIT
  const ProcessId j = msg->core.sender;
  if (est_vect_[j.value].has_value()) return;  // already recorded
  // Fig 3 lines 7-8: record the value and extend the certificate.
  est_vect_[j.value] = msg->core.init_value;
  cert_.add_init(msg);
  if (cert_.init_count() >= config_.quorum()) {
    begin_round(ctx, Round{1});
  }
}

void BftProcess::begin_round(sim::Context& ctx, Round r) {
  MODUBFT_EXPECTS(r.value == round_.value + 1);
  round_ = r;
  sent_next_this_round_ = false;
  adopted_current_.reset();

  // Line 12 sends the coordinator's CURRENT *before* line 13 resets
  // next_cert: the previous round's NEXT quorum is this round's entry
  // witness.
  Certificate entry_witness = cert_.next_cert();
  cert_.reset_round();
  muteness_.on_new_round(ctx.now());

  if (bft_coordinator_of(round_, config_.n) == ctx.id()) {
    MessageCore core;
    core.kind = BftKind::kCurrent;
    core.sender = ctx.id();
    core.round = round_;
    core.est = est_vect_;
    send_signed(ctx, std::move(core),
                cert_.build({&cert_.est_cert(), &entry_witness}));
  }
  check_suspicion(ctx);
  drain_buffer(ctx);
}

void BftProcess::drain_buffer(sim::Context& ctx) {
  auto it = future_.find(round_.value);
  if (it == future_.end()) return;
  std::vector<MemberPtr> pending = std::move(it->second);
  future_.erase(it);
  const Round at = round_;
  for (const MemberPtr& msg : pending) {
    if (decided() || round_ != at) break;  // a replay advanced or ended us
    if (nonmute_.is_faulty(msg->core.sender)) continue;
    process_validated(ctx, msg);
  }
}

void BftProcess::apply_current(sim::Context& ctx, const MemberPtr& msg) {
  if (decided()) return;
  if (msg->core.round != round_) return;  // stale: monitor bookkeeping only

  if (!adopted_current_) {
    // Line 17: adopt the first valid CURRENT of the round.
    adopted_current_ = msg;
    est_vect_ = msg->core.est;
    cert_.adopt_est(msg->cert);
    cert_.add_current(msg);
    // Lines 18-19: relay it, provided we have not yet voted NEXT and are
    // not the coordinator.
    if (!sent_next_this_round_ &&
        bft_coordinator_of(round_, config_.n) != ctx.id()) {
      MessageCore core;
      core.kind = BftKind::kCurrent;
      core.sender = ctx.id();
      core.round = round_;
      core.est = est_vect_;
      send_signed(ctx, std::move(core), cert_.relay_of(msg));
    }
  } else if (msg->core.est == est_vect_) {
    cert_.add_current(msg);
  } else {
    // Two well-formed CURRENTs with different vectors in one round: both
    // chains bottom at coordinator-signed messages, so the coordinator
    // equivocated.  That is provable misbehaviour.  The message is still a
    // received vote: it counts toward REC_FROM (change-mind progress) but
    // never toward the decision quorum.
    cert_.add_conflicting_current(msg);
    const ProcessId coord = bft_coordinator_of(round_, config_.n);
    if (!nonmute_.is_faulty(coord)) {
      nonmute_.declare_faulty(coord, FaultKind::kEquivocation,
                              "two conflicting certified vectors in round " +
                                  std::to_string(round_.value),
                              ctx.now());
    }
    check_change_mind(ctx);
    return;
  }

  // Line 20-21: a quorum of matching CURRENTs decides.
  if (cert_.current_count() >= config_.quorum()) {
    MessageCore core;
    core.kind = BftKind::kDecide;
    core.sender = ctx.id();
    core.round = round_;
    core.est = est_vect_;
    Certificate decide_cert = cert_.build({&cert_.current_cert()});
    send_signed(ctx, std::move(core), std::move(decide_cert));
    decide(ctx, est_vect_, round_);
    return;
  }

  check_change_mind(ctx);
}

void BftProcess::apply_next(sim::Context& ctx, const MemberPtr& msg) {
  if (decided()) return;
  if (msg->core.round != round_) return;  // stale for the protocol
  cert_.add_next(msg);                    // line 27
  check_change_mind(ctx);
  check_round_exit(ctx);
}

void BftProcess::send_next(sim::Context& ctx, Certificate cert) {
  sent_next_this_round_ = true;
  MessageCore core;
  core.kind = BftKind::kNext;
  core.sender = ctx.id();
  core.round = round_;
  send_signed(ctx, std::move(core), std::move(cert));
}

void BftProcess::check_suspicion(sim::Context& ctx) {
  // Lines 22-25: suspected ∪ faulty coordinator, still q0, no CURRENT seen.
  if (decided() || round_.value == 0 || sent_next_this_round_) return;
  if (cert_.current_count() != 0) return;
  const ProcessId coord = bft_coordinator_of(round_, config_.n);
  if (coord == ctx.id()) return;
  if (!muteness_.suspects(coord, ctx.now()) && !nonmute_.is_faulty(coord))
    return;
  send_next(ctx, cert_.build({&cert_.current_cert(), &cert_.next_cert(),
                              &cert_.est_cert()}));
  check_round_exit(ctx);
}

void BftProcess::check_change_mind(sim::Context& ctx) {
  // Lines 28-29, with the crash protocol's majority replaced by n−F.
  if (decided() || round_.value == 0 || sent_next_this_round_) return;
  if (cert_.current_count() == 0) return;
  if (cert_.rec_from().size() < config_.quorum()) return;
  if (cert_.current_count() >= config_.quorum()) return;  // would decide
  if (cert_.next_count() >= config_.quorum()) return;     // round over
  send_next(ctx, cert_.build({&cert_.current_cert(), &cert_.conflict_cert(),
                              &cert_.next_cert()}));
}

void BftProcess::check_round_exit(sim::Context& ctx) {
  // Line 14 / 31: n−F NEXTs end the round.
  if (decided() || round_.value == 0) return;
  if (cert_.next_count() < config_.quorum()) return;
  if (!sent_next_this_round_) {
    send_next(ctx, cert_.build({&cert_.next_cert()}));  // line 31
  }
  begin_round(ctx, round_.next());
}

void BftProcess::on_timer(sim::Context& ctx, std::uint64_t) {
  if (decided()) return;
  check_suspicion(ctx);
  ctx.set_timer(config_.suspicion_poll_period);
}

void BftProcess::decide(sim::Context& ctx, const VectorValue& vect,
                        Round round) {
  if (decided()) return;
  decision_ = VectorDecision{vect, round, ctx.now()};
  log_debug("BFT ", ctx.id(), " decides in ", round);
  if (on_decide_) on_decide_(ctx.id(), *decision_);
  if (config_.stop_on_decide) ctx.stop();
}

}  // namespace modubft::bft
