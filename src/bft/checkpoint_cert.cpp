#include "bft/checkpoint_cert.hpp"

#include <set>

namespace modubft::bft {

namespace {
constexpr char kDomain[] = "MBFT-CKPT";
}  // namespace

Bytes checkpoint_signing_bytes(std::uint64_t slot,
                               const crypto::Digest& digest) {
  Writer w;
  w.str(kDomain);
  w.u64(slot);
  w.raw(crypto::digest_bytes(digest));
  return std::move(w).take();
}

void write_cert_sigs(
    Writer& w, const std::vector<std::pair<std::uint32_t, Bytes>>& sigs) {
  w.u32(static_cast<std::uint32_t>(sigs.size()));
  for (const auto& [signer, sig] : sigs) {
    w.u32(signer);
    w.bytes(sig);
  }
}

std::vector<std::pair<std::uint32_t, Bytes>> read_cert_sigs(
    Reader& r, std::uint32_t max_sigs) {
  const std::size_t count = r.seq_len(max_sigs);
  std::vector<std::pair<std::uint32_t, Bytes>> sigs;
  sigs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t signer = r.u32();
    sigs.emplace_back(signer, r.bytes());
  }
  return sigs;
}

bool verify_checkpoint_cert(const CheckpointCert& cert,
                            const crypto::Verifier& verifier, std::uint32_t n,
                            std::uint32_t quorum) {
  if (cert.slot == 0) return true;  // genesis: locally recomputable
  const Bytes preimage = checkpoint_signing_bytes(cert.slot, cert.digest);
  std::set<std::uint32_t> valid;
  for (const auto& [signer, sig] : cert.sigs) {
    if (signer >= n) return false;  // out-of-range signer: reject outright
    if (!verifier.verify(ProcessId{signer}, preimage, sig)) return false;
    valid.insert(signer);
  }
  return valid.size() >= quorum;
}

}  // namespace modubft::bft
