#include "bft/message.hpp"

#include "common/serial.hpp"

namespace modubft::bft {

const char* kind_name(BftKind k) {
  switch (k) {
    case BftKind::kInit: return "INIT";
    case BftKind::kCurrent: return "CURRENT";
    case BftKind::kNext: return "NEXT";
    case BftKind::kDecide: return "DECIDE";
  }
  return "?";
}

bool MessageCore::operator==(const MessageCore& other) const {
  return kind == other.kind && sender == other.sender &&
         round == other.round && init_value == other.init_value &&
         est == other.est;
}

Bytes encode_core(const MessageCore& core) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(core.kind));
  w.u32(core.sender.value);
  w.u32(core.round.value);
  w.u64(core.init_value);
  w.u32(static_cast<std::uint32_t>(core.est.size()));
  for (const std::optional<Value>& entry : core.est) {
    w.boolean(entry.has_value());
    w.u64(entry.value_or(0));
  }
  return std::move(w).take();
}

crypto::Digest cert_digest(const Certificate& cert) {
  if (cert.pruned) return cert.digest;
  crypto::Sha256 h;
  for (const SignedMessage& m : cert.members) {
    Bytes core = encode_core(m.core);
    Writer frame;
    frame.bytes(core);
    frame.raw(crypto::digest_bytes(cert_digest(m.cert)));
    frame.bytes(m.sig);
    h.update(frame.data());
  }
  return h.finish();
}

Bytes signing_bytes(const MessageCore& core, const Certificate& cert) {
  Bytes out = encode_core(core);
  crypto::Digest d = cert_digest(cert);
  out.insert(out.end(), d.begin(), d.end());
  return out;
}

Certificate prune(const Certificate& cert) {
  Certificate out;
  out.pruned = true;
  out.digest = cert_digest(cert);
  return out;
}

namespace {

void encode_message_into(Writer& w, const SignedMessage& msg);

void encode_cert_into(Writer& w, const Certificate& cert) {
  w.boolean(cert.pruned);
  if (cert.pruned) {
    w.raw(crypto::digest_bytes(cert.digest));
    return;
  }
  w.u32(static_cast<std::uint32_t>(cert.members.size()));
  for (const SignedMessage& m : cert.members) encode_message_into(w, m);
}

void encode_message_into(Writer& w, const SignedMessage& msg) {
  w.bytes(encode_core(msg.core));
  encode_cert_into(w, msg.cert);
  w.bytes(msg.sig);
}

MessageCore decode_core(const Bytes& buf, const DecodeLimits& limits) {
  Reader r(buf);
  MessageCore core;
  const std::uint8_t kind = r.u8();
  if (kind < 1 || kind > 4) throw SerialError("unknown message kind");
  core.kind = static_cast<BftKind>(kind);
  core.sender = ProcessId{r.u32()};
  core.round = Round{r.u32()};
  core.init_value = r.u64();
  const std::uint32_t len = r.seq_len(limits.max_vector);
  core.est.reserve(len);
  for (std::uint32_t i = 0; i < len; ++i) {
    const bool present = r.boolean();
    const Value v = r.u64();
    core.est.push_back(present ? std::optional<Value>(v) : std::nullopt);
  }
  r.expect_end();
  return core;
}

SignedMessage decode_message_from(Reader& r, const DecodeLimits& limits,
                                  std::uint32_t depth);

Certificate decode_cert_from(Reader& r, const DecodeLimits& limits,
                             std::uint32_t depth) {
  if (depth > limits.max_depth) throw SerialError("certificate too deep");
  Certificate cert;
  cert.pruned = r.boolean();
  if (cert.pruned) {
    for (std::size_t i = 0; i < cert.digest.size(); ++i) cert.digest[i] = r.u8();
    return cert;
  }
  const std::uint32_t count = r.seq_len(limits.max_members);
  cert.members.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    cert.members.push_back(decode_message_from(r, limits, depth + 1));
  }
  return cert;
}

SignedMessage decode_message_from(Reader& r, const DecodeLimits& limits,
                                  std::uint32_t depth) {
  SignedMessage msg;
  Bytes core_bytes = r.bytes();
  msg.core = decode_core(core_bytes, limits);
  msg.cert = decode_cert_from(r, limits, depth);
  msg.sig = r.bytes();
  if (msg.sig.size() > limits.max_sig_bytes)
    throw SerialError("oversized signature");
  return msg;
}

}  // namespace

Bytes encode_message(const SignedMessage& msg) {
  Writer w;
  encode_message_into(w, msg);
  return std::move(w).take();
}

SignedMessage decode_message(const Bytes& buf, const DecodeLimits& limits) {
  Reader r(buf);
  SignedMessage msg = decode_message_from(r, limits, 0);
  r.expect_end();
  return msg;
}

std::size_t encoded_size(const SignedMessage& msg) {
  return encode_message(msg).size();
}

}  // namespace modubft::bft
