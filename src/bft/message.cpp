#include "bft/message.hpp"

#include "common/serial.hpp"

namespace modubft::bft {

const char* kind_name(BftKind k) {
  switch (k) {
    case BftKind::kInit: return "INIT";
    case BftKind::kCurrent: return "CURRENT";
    case BftKind::kNext: return "NEXT";
    case BftKind::kDecide: return "DECIDE";
  }
  return "?";
}

bool MessageCore::operator==(const MessageCore& other) const {
  return kind == other.kind && sender == other.sender &&
         round == other.round && init_value == other.init_value &&
         est == other.est;
}

Certificate Certificate::of(std::initializer_list<SignedMessage> members) {
  Certificate cert;
  cert.reserve(members.size());
  for (const SignedMessage& m : members) cert.add(m);
  return cert;
}

void Certificate::add(SignedMessage m) {
  add(std::make_shared<const SignedMessage>(std::move(m)));
}

void Certificate::add(MemberPtr m) {
  members_.push_back(std::move(m));
  invalidate_digests();
}

void Certificate::replace(std::size_t i, SignedMessage m) {
  members_.at(i) = std::make_shared<const SignedMessage>(std::move(m));
  invalidate_digests();
}

void Certificate::invalidate_digests() {
  digest_cache_.reset();
  member_sig_digests_.clear();
}

Bytes encode_core(const MessageCore& core) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(core.kind));
  w.u32(core.sender.value);
  w.u32(core.round.value);
  w.u64(core.init_value);
  w.u32(static_cast<std::uint32_t>(core.est.size()));
  for (const std::optional<Value>& entry : core.est) {
    w.boolean(entry.has_value());
    w.u64(entry.value_or(0));
  }
  return std::move(w).take();
}

const crypto::Digest& Certificate::inline_digest() const {
  if (!digest_cache_) {
    crypto::Sha256 h;
    for (const MemberPtr& m : members_) {
      Bytes core = encode_core(m->core);
      Writer frame;
      frame.bytes(core);
      frame.raw(crypto::digest_bytes(cert_digest(m->cert)));
      frame.bytes(m->sig);
      h.update(frame.data());
    }
    digest_cache_ = h.finish();
  }
  return *digest_cache_;
}

const crypto::Digest& Certificate::member_signing_digest(std::size_t i) const {
  if (member_sig_digests_.size() != members_.size())
    member_sig_digests_.assign(members_.size(), std::nullopt);
  std::optional<crypto::Digest>& slot = member_sig_digests_.at(i);
  if (!slot) {
    const SignedMessage& m = *members_[i];
    slot = crypto::sha256(signing_bytes(m.core, m.cert));
  }
  return *slot;
}

crypto::Digest cert_digest(const Certificate& cert) {
  if (cert.pruned) return cert.digest;
  return cert.inline_digest();
}

Bytes signing_bytes(const MessageCore& core, const Certificate& cert) {
  Bytes out = encode_core(core);
  crypto::Digest d = cert_digest(cert);
  out.insert(out.end(), d.begin(), d.end());
  return out;
}

Certificate prune(const Certificate& cert) {
  Certificate out;
  out.pruned = true;
  out.digest = cert_digest(cert);
  return out;
}

namespace {

void encode_message_into(Writer& w, const SignedMessage& msg);

void encode_cert_into(Writer& w, const Certificate& cert) {
  w.boolean(cert.pruned);
  if (cert.pruned) {
    w.raw(crypto::digest_bytes(cert.digest));
    return;
  }
  w.u32(static_cast<std::uint32_t>(cert.members().size()));
  for (const MemberPtr& m : cert.members()) encode_message_into(w, *m);
}

void encode_message_into(Writer& w, const SignedMessage& msg) {
  w.bytes(encode_core(msg.core));
  encode_cert_into(w, msg.cert);
  w.bytes(msg.sig);
}

MessageCore decode_core_from(Reader r, const DecodeLimits& limits) {
  MessageCore core;
  const std::uint8_t kind = r.u8();
  if (kind < 1 || kind > 4) throw SerialError("unknown message kind");
  core.kind = static_cast<BftKind>(kind);
  core.sender = ProcessId{r.u32()};
  core.round = Round{r.u32()};
  core.init_value = r.u64();
  const std::uint32_t len = r.seq_len(limits.max_vector);
  core.est.reserve(len);
  for (std::uint32_t i = 0; i < len; ++i) {
    const bool present = r.boolean();
    const Value v = r.u64();
    // Canonical form: an absent entry's value slot must be zero.  Fuzzing
    // found that accepting nonzero garbage there creates distinct byte
    // strings decoding to one message — covert variation that the
    // re-encode check upstream catches late; reject it at the source.
    if (!present && v != 0) throw SerialError("non-canonical null entry");
    core.est.push_back(present ? std::optional<Value>(v) : std::nullopt);
  }
  r.expect_end();
  return core;
}

SignedMessage decode_message_from(Reader& r, const DecodeLimits& limits,
                                  std::uint32_t depth);

Certificate decode_cert_from(Reader& r, const DecodeLimits& limits,
                             std::uint32_t depth) {
  if (depth > limits.max_depth) throw SerialError("certificate too deep");
  Certificate cert;
  cert.pruned = r.boolean();
  if (cert.pruned) {
    for (std::size_t i = 0; i < cert.digest.size(); ++i) cert.digest[i] = r.u8();
    return cert;
  }
  const std::uint32_t count = r.seq_len(limits.max_members);
  cert.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    cert.add(decode_message_from(r, limits, depth + 1));
  }
  return cert;
}

SignedMessage decode_message_from(Reader& r, const DecodeLimits& limits,
                                  std::uint32_t depth) {
  SignedMessage msg;
  // The core decodes from a sub-view aliasing the frame — no copy.
  msg.core = decode_core_from(r.nested(), limits);
  msg.cert = decode_cert_from(r, limits, depth);
  msg.sig = r.bytes();
  if (msg.sig.size() > limits.max_sig_bytes)
    throw SerialError("oversized signature");
  return msg;
}

std::size_t encoded_core_size(const MessageCore& core) {
  // kind + sender + round + init_value + est length prefix + 9 bytes per
  // est entry (presence flag + value) — mirrors encode_core exactly.
  return 1 + 4 + 4 + 8 + 4 + 9 * core.est.size();
}

std::size_t encoded_cert_size(const Certificate& cert);

std::size_t encoded_message_size(const SignedMessage& msg) {
  return 4 + encoded_core_size(msg.core) + encoded_cert_size(msg.cert) + 4 +
         msg.sig.size();
}

std::size_t encoded_cert_size(const Certificate& cert) {
  if (cert.pruned) return 1 + cert.digest.size();
  std::size_t total = 1 + 4;
  for (const MemberPtr& m : cert.members()) total += encoded_message_size(*m);
  return total;
}

}  // namespace

Bytes encode_message(const SignedMessage& msg) {
  Writer w;
  encode_message_into(w, msg);
  return std::move(w).take();
}

void encode_message(const SignedMessage& msg, Writer& w) {
  encode_message_into(w, msg);
}

SignedMessage decode_message(const Bytes& buf, const DecodeLimits& limits) {
  if (buf.size() > limits.max_frame_bytes)
    throw SerialError("frame exceeds size cap");
  Reader r(buf);
  SignedMessage msg = decode_message_from(r, limits, 0);
  r.expect_end();
  return msg;
}

DecodeOutcome try_decode_message(const Bytes& buf, const DecodeLimits& limits) {
  DecodeOutcome out;
  try {
    out.msg = decode_message(buf, limits);
    out.ok = true;
  } catch (const SerialError& e) {
    out.error = e.what();
  }
  return out;
}

std::size_t encoded_size(const SignedMessage& msg) {
  return encoded_message_size(msg);
}

}  // namespace modubft::bft
