// Certified lockstep barrier — the methodology applied to a second
// round-based protocol.
//
// The crash-model protocol is the elementary round barrier used inside
// many synchronizer constructions: in round r, broadcast a round-r vote,
// wait for n−F of them, advance; after `rounds` rounds, finish.  It is a
// "regular round-based protocol" in the paper's sense, so the §3 recipe
// applies:
//   * votes are signed (signature module);
//   * a silent peer is suspected by ◇M — the barrier tolerates it because
//     only n−F votes are needed (muteness module);
//   * each vote for round r+1 must carry a certificate of n−F signed
//     round-r votes (the round-number certification of §5.1, checked with
//     the same CertAnalyzer::entry_wf used by the consensus protocol);
//   * the per-peer model rejects duplicated, skipped-round and
//     out-of-order votes (non-muteness module).
//
// The protocol plugs into the generic TransformedActor unchanged —
// demonstrating that the pipeline, and three of the five modules, are
// protocol-independent.
#pragma once

#include <functional>
#include <memory>

#include "bft/analyzer.hpp"
#include "bft/transform.hpp"

namespace modubft::bft {

struct LockstepConfig {
  std::uint32_t n = 0;
  std::uint32_t f = 0;
  std::uint32_t rounds = 5;  // barrier count to cross
  bool prune_witness = true; // prune the witness votes' own certificates
  /// ◇M timeouts of the assembled pipeline — widen on wall-clock
  /// substrates (the defaults are simulator-scale).
  fd::MutenessConfig muteness{};
  std::uint32_t quorum() const { return n - f; }
};

/// Completion callback: (process, final round reached, completion time).
using LockstepDoneFn = std::function<void(ProcessId, Round, SimTime)>;

/// The protocol module (plugs into TransformedActor).
class LockstepProtocol final : public RoundProtocol {
 public:
  LockstepProtocol(LockstepConfig config, LockstepDoneFn on_done);

  void rp_start(ModuleServices& services, sim::Context& ctx) override;
  void rp_deliver(ModuleServices& services, sim::Context& ctx,
                  const SignedMessage& msg) override;
  void rp_timer(ModuleServices& services, sim::Context& ctx,
                std::uint64_t timer_id) override;
  Round rp_round() const override { return round_; }
  bool rp_done() const override { return done_; }

 private:
  void vote(ModuleServices& services, sim::Context& ctx);

  LockstepConfig config_;
  LockstepDoneFn on_done_;
  Round round_;
  Certificate witness_;       // the previous round's quorum of votes
  Certificate collected_;     // this round's valid votes
  bool done_ = false;
};

/// The peer behaviour model (plugs into TransformedActor).
class LockstepPeerModel final : public PeerModel {
 public:
  LockstepPeerModel(ProcessId peer, std::shared_ptr<const CertAnalyzer> analyzer);

  Verdict observe(const SignedMessage& msg) override;

 private:
  Verdict fail(FaultKind kind, std::string detail);

  ProcessId peer_;
  std::shared_ptr<const CertAnalyzer> analyzer_;
  Round last_round_;  // 0 = no vote seen yet
  bool faulty_ = false;
};

/// Convenience assembly: lockstep protocol + models inside the generic
/// transformed pipeline.
std::unique_ptr<sim::Actor> make_lockstep_actor(
    LockstepConfig config, const crypto::Signer* signer,
    std::shared_ptr<const crypto::Verifier> verifier, LockstepDoneFn on_done,
    const TransformedActor** out_view = nullptr);

}  // namespace modubft::bft
