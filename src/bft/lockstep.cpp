#include "bft/lockstep.hpp"

#include "common/check.hpp"

namespace modubft::bft {

LockstepProtocol::LockstepProtocol(LockstepConfig config, LockstepDoneFn on_done)
    : config_(config), on_done_(std::move(on_done)) {
  MODUBFT_EXPECTS(config_.n >= 2);
  MODUBFT_EXPECTS(config_.f < config_.n);
  MODUBFT_EXPECTS(config_.rounds >= 1);
}

void LockstepProtocol::vote(ModuleServices& services, sim::Context& ctx) {
  MessageCore core;
  core.kind = BftKind::kNext;
  core.sender = ctx.id();
  core.round = round_;
  services.emit(ctx, std::move(core), witness_);
}

void LockstepProtocol::rp_start(ModuleServices& services, sim::Context& ctx) {
  round_ = Round{1};
  vote(services, ctx);
}

void LockstepProtocol::rp_deliver(ModuleServices& services, sim::Context& ctx,
                                  const SignedMessage& msg) {
  if (done_ || msg.core.round != round_) return;  // stale votes: model-only
  collected_.add(msg);
  if (collected_.size() < config_.quorum()) return;

  // Barrier crossed: this round's quorum becomes the next round's witness.
  // Unpruned votes are shared, not copied; prune() is O(1) once the vote's
  // certificate digest is memoized.
  witness_ = Certificate{};
  for (const MemberPtr& m : collected_.members()) {
    if (config_.prune_witness && !m->cert.empty() && !m->cert.pruned) {
      witness_.add(SignedMessage{m->core, prune(m->cert), m->sig});
    } else {
      witness_.add(m);
    }
  }
  collected_ = Certificate{};

  if (round_.value >= config_.rounds) {
    done_ = true;
    if (on_done_) on_done_(ctx.id(), round_, ctx.now());
    return;
  }
  round_ = round_.next();
  vote(services, ctx);
}

void LockstepProtocol::rp_timer(ModuleServices&, sim::Context&, std::uint64_t) {
  // The barrier needs no timers: progress is purely message-driven.
}

LockstepPeerModel::LockstepPeerModel(
    ProcessId peer, std::shared_ptr<const CertAnalyzer> analyzer)
    : peer_(peer), analyzer_(std::move(analyzer)) {
  MODUBFT_EXPECTS(analyzer_ != nullptr);
}

Verdict LockstepPeerModel::fail(FaultKind kind, std::string detail) {
  faulty_ = true;
  return Verdict::fail(kind, std::move(detail));
}

Verdict LockstepPeerModel::observe(const SignedMessage& msg) {
  if (faulty_) return Verdict::fail(FaultKind::kNone, "peer already faulty");

  if (msg.core.kind != BftKind::kNext || !msg.core.est.empty()) {
    return fail(FaultKind::kWrongExpected,
                "lockstep peers send only round votes");
  }
  const Round r = msg.core.round;
  if (r.value == 0) {
    return fail(FaultKind::kWrongExpected, "vote for round 0");
  }
  if (r.value <= last_round_.value) {
    return fail(FaultKind::kOutOfOrder, "duplicate or regressing vote");
  }
  if (r.value != last_round_.value + 1) {
    return fail(FaultKind::kOutOfOrder, "skipped a round");
  }
  // Round-number certification (§5.1): a round-r vote must witness the
  // previous barrier with n−F signed round-(r−1) votes.
  if (Verdict v = analyzer_->entry_wf(msg.cert, r); !v) {
    faulty_ = true;
    return v;
  }
  last_round_ = r;
  return Verdict::ok();
}

std::unique_ptr<sim::Actor> make_lockstep_actor(
    LockstepConfig config, const crypto::Signer* signer,
    std::shared_ptr<const crypto::Verifier> verifier, LockstepDoneFn on_done,
    const TransformedActor** out_view) {
  auto analyzer = std::make_shared<const CertAnalyzer>(
      config.n, config.quorum(), verifier);

  TransformConfig tcfg;
  tcfg.n = config.n;
  tcfg.muteness = config.muteness;

  auto actor = std::make_unique<TransformedActor>(
      tcfg, signer, verifier,
      std::make_unique<LockstepProtocol>(config, std::move(on_done)),
      [analyzer](ProcessId peer) {
        return std::make_unique<LockstepPeerModel>(peer, analyzer);
      });
  if (out_view != nullptr) *out_view = actor.get();
  return actor;
}

}  // namespace modubft::bft
