// Per-peer behaviour monitor — the Figure 4 state machine.
//
// "Under the assumption that every process knows the program text of the
// other processes, every process can build an ad-hoc state machine modeling
// the expected behavior of another process."  SM_p(q) tracks, from p's
// viewpoint and in FIFO receipt order, which automaton state q must be in:
//
//   start ──INIT──▶ q0@r ──CURRENT──▶ q1 ──NEXT──▶ q2 ──(round r+1)──▶ q0@r+1
//                     │                 │            │
//                     └──NEXT──▶ q2     │            │
//                     └────────DECIDE──┴────────────┴──▶ final
//   any invalid event ──▶ faulty (terminal)
//
// Receipt events that are not enabled in the current state are
// "out-of-order messages"; enabled events whose syntax or certificate is
// inconsistent are "wrong expected messages" — both trigger the transition
// to the terminal faulty state, exactly as in the paper.
//
// Precondition maintained by the caller (the non-muteness module): CURRENT
// and NEXT messages are only fed to the monitor once the *receiver* has
// reached the message's round, so the receiver's own quorum evidence
// legitimizes the round number; future-round traffic is buffered upstream.
#pragma once

#include "bft/analyzer.hpp"
#include "bft/message.hpp"
#include "bft/verdict.hpp"

namespace modubft::bft {

class PeerMonitor {
 public:
  enum class State : std::uint8_t { kStart, kInRound, kFinal, kFaulty };

  PeerMonitor(ProcessId peer, const CertAnalyzer& analyzer);

  /// Validates the next message from the monitored peer (in FIFO order) and
  /// advances the model.  A failed verdict leaves the monitor in kFaulty;
  /// every later message is rejected without a fresh accusation.
  Verdict observe(const SignedMessage& msg);

  State state() const { return state_; }
  Round tracked_round() const { return round_; }
  PeerPhase phase() const { return phase_; }
  ProcessId peer() const { return peer_; }

 private:
  Verdict fault(FaultKind kind, std::string detail);
  Verdict observe_init(const SignedMessage& msg);
  Verdict observe_decide(const SignedMessage& msg);
  Verdict observe_round_message(const SignedMessage& msg);

  ProcessId peer_;
  const CertAnalyzer& analyzer_;
  State state_ = State::kStart;
  Round round_;  // meaningful in kInRound
  PeerPhase phase_ = PeerPhase::kQ0;
};

}  // namespace modubft::bft
