// The transformed protocol on real OS threads.
//
// Runs Byzantine vector consensus on the threaded in-memory transport via
// the substrate-generic scenario runner (runtime::Backend::kThreads): each
// process is a thread, messages cross MPSC mailboxes, time is the wall
// clock.  Demonstrates that the protocol stack has no hidden dependency on
// the simulator's determinism — the scenario is byte-for-byte the one the
// simulator runs; only the substrate selector changes.
//
//   ./examples/threaded_consensus
#include <iostream>

#include "faults/scenario.hpp"
#include "runtime/substrate.hpp"

int main() {
  using namespace modubft;
  constexpr std::uint32_t kN = 4;

  faults::BftScenarioConfig cfg;
  cfg.n = kN;
  cfg.f = 1;
  cfg.seed = 11;
  cfg.substrate = runtime::Backend::kThreads;
  cfg.budget = std::chrono::milliseconds(8000);
  // Real RSA signatures (64-bit toy keys) on this run.
  cfg.scheme = faults::Scheme::kRsa64;
  cfg.proposals = {7000, 7001, 7002, 7003};

  std::cout << "Byzantine vector consensus on " << kN
            << " OS threads (rsa64 signatures)...\n";
  const faults::BftScenarioResult r = faults::run_bft_scenario(cfg);

  for (const auto& [i, d] : r.decisions) {
    std::cout << "  p" << (i + 1) << " decided in round " << d.round.value
              << " after " << d.time / 1000.0 << "ms  [";
    for (std::size_t j = 0; j < d.entries.size(); ++j) {
      if (j) std::cout << ", ";
      if (d.entries[j].has_value()) std::cout << *d.entries[j];
      else std::cout << "null";
    }
    std::cout << "]\n";
  }
  std::cout << "\nall nodes stopped: " << (r.clean ? "yes" : "NO")
            << ", decided: " << r.decisions.size() << "/" << kN
            << ", agreement: " << (r.agreement ? "yes" : "NO") << "\n"
            << "run stats: " << runtime::to_json(cfg.substrate, r.run_stats)
            << "\n";
  return r.clean && r.termination && r.agreement ? 0 : 1;
}
