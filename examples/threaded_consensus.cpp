// The transformed protocol on real OS threads.
//
// Runs Byzantine vector consensus on the threaded in-memory transport:
// each process is a thread, messages cross MPSC mailboxes, time is the
// wall clock.  Demonstrates that the protocol stack has no hidden
// dependency on the simulator's determinism.
//
//   ./examples/threaded_consensus
#include <iostream>
#include <map>
#include <mutex>

#include "bft/bft_consensus.hpp"
#include "crypto/rsa64.hpp"
#include "transport/cluster.hpp"

int main() {
  using namespace modubft;
  constexpr std::uint32_t kN = 4;

  // Real RSA signatures (64-bit toy keys) on this run.
  crypto::SignatureSystem keys = crypto::Rsa64Scheme{}.make_system(kN, 11);

  bft::BftConfig proto;
  proto.n = kN;
  proto.f = 1;
  proto.muteness.initial_timeout = 500'000;  // wall-clock µs: be generous
  proto.suspicion_poll_period = 50'000;

  transport::ClusterConfig cfg;
  cfg.n = kN;
  cfg.budget = std::chrono::milliseconds(8000);
  transport::Cluster cluster(cfg);

  std::mutex mu;
  std::map<std::uint32_t, bft::VectorDecision> decisions;

  for (std::uint32_t i = 0; i < kN; ++i) {
    cluster.set_actor(
        ProcessId{i},
        std::make_unique<bft::BftProcess>(
            proto, 7000 + i, keys.signers[i].get(), keys.verifier,
            [&mu, &decisions, i](ProcessId, const bft::VectorDecision& d) {
              std::lock_guard<std::mutex> lock(mu);
              decisions.emplace(i, d);
            }));
  }

  std::cout << "Byzantine vector consensus on " << kN
            << " OS threads (rsa64 signatures)...\n";
  const bool all_stopped = cluster.run();

  bool agreement = true;
  for (const auto& [i, d] : decisions) {
    std::cout << "  p" << (i + 1) << " decided in round " << d.round.value
              << " after " << d.time / 1000.0 << "ms  [";
    for (std::size_t j = 0; j < d.entries.size(); ++j) {
      if (j) std::cout << ", ";
      if (d.entries[j].has_value()) std::cout << *d.entries[j];
      else std::cout << "null";
    }
    std::cout << "]\n";
    agreement = agreement && d.entries == decisions.begin()->second.entries;
  }
  std::cout << "\nall nodes stopped: " << (all_stopped ? "yes" : "NO")
            << ", decided: " << decisions.size() << "/" << kN
            << ", agreement: " << (agreement ? "yes" : "NO") << "\n";
  return all_stopped && decisions.size() == kN && agreement ? 0 : 1;
}
