// Byzantine vector consensus: the paper's transformed protocol (Figure 3).
//
// Seven processes run the five-module transformed protocol; two are
// Byzantine (the round-1 coordinator corrupts its estimate vector, another
// process forges signatures).  The detection modules convict both, the
// survivors agree on a certified vector, and Vector Validity guarantees at
// least n − 2F = 3 entries from correct processes.
//
//   ./examples/byzantine_vector_consensus [seed]
#include <cstdlib>
#include <iostream>

#include "bft/config.hpp"
#include "faults/scenario.hpp"

int main(int argc, char** argv) {
  using namespace modubft;

  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;

  faults::BftScenarioConfig cfg;
  cfg.n = 7;
  cfg.f = 2;
  cfg.seed = seed;
  cfg.stop_on_decide = false;  // audit mode: keep monitoring after deciding

  faults::FaultSpec corrupt;
  corrupt.who = ProcessId{0};  // round-1 coordinator
  corrupt.behavior = faults::Behavior::kCorruptVector;
  faults::FaultSpec forger;
  forger.who = ProcessId{4};
  forger.behavior = faults::Behavior::kBadSignature;
  cfg.faults = {corrupt, forger};

  std::cout << "Byzantine vector consensus: n=7, F=2 "
            << "(p1 corrupts vectors, p5 forges signatures), seed=" << seed
            << "\n"
            << "resilience bound: F <= min((n-1)/2, C) = "
            << bft::max_tolerated_faults(7) << "\n\n";

  faults::BftScenarioResult r = faults::run_bft_scenario(cfg);

  for (const auto& [i, d] : r.decisions) {
    std::cout << "  p" << (i + 1) << " decided in round " << d.round.value
              << " at t=" << d.time / 1000.0 << "ms  vector = [";
    for (std::size_t j = 0; j < d.entries.size(); ++j) {
      if (j) std::cout << ", ";
      if (d.entries[j].has_value()) {
        std::cout << *d.entries[j];
      } else {
        std::cout << "null";
      }
    }
    std::cout << "]\n";
  }

  std::cout << "\n  detections by correct processes:\n";
  for (const auto& rec : r.records) {
    std::cout << "    " << rec.culprit << " convicted: "
              << bft::fault_kind_name(rec.kind) << " — " << rec.detail << "\n";
  }

  std::cout << "\n  agreement:          " << (r.agreement ? "yes" : "NO")
            << "\n  termination:        " << (r.termination ? "yes" : "NO")
            << "\n  vector validity:    " << (r.vector_validity ? "yes" : "NO")
            << "\n  correct entries:    >= " << r.min_correct_entries
            << " (bound: n-2F = " << 7 - 2 * 2 << ")"
            << "\n  detectors reliable: "
            << (r.detectors_reliable ? "yes" : "NO") << "\n";
  return r.agreement && r.termination && r.vector_validity ? 0 : 1;
}
