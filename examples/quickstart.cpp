// Quickstart: crash-tolerant consensus with the Hurfin–Raynal protocol
// (paper Figure 2) on the deterministic simulator.
//
// Five processes propose values; the round-1 coordinator crashes mid-run;
// the survivors detect it through the ◇S failure detector and agree in a
// later round.
//
//   ./examples/quickstart [seed]
#include <cstdlib>
#include <iostream>

#include "faults/scenario.hpp"

int main(int argc, char** argv) {
  using namespace modubft;

  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  faults::CrashScenarioConfig cfg;
  cfg.n = 5;
  cfg.seed = seed;
  cfg.protocol = faults::CrashProtocol::kHurfinRaynal;
  // p1 (round-1 coordinator) crashes at startup, before it can propose:
  // the survivors must suspect it (◇S) and finish under p2's coordination.
  cfg.crash_times = {SimTime{0}, std::nullopt, std::nullopt, std::nullopt,
                     std::nullopt};
  cfg.proposals = {100, 200, 300, 400, 500};

  std::cout << "Running Hurfin-Raynal consensus: n=5, p1 crashes at start, "
               "seed="
            << seed << "\n\n";

  faults::CrashScenarioResult r = faults::run_crash_scenario(cfg);

  for (const auto& [i, d] : r.decisions) {
    std::cout << "  p" << (i + 1) << " decided " << d.value << " in round "
              << d.round.value << " at t=" << d.time / 1000.0 << "ms\n";
  }
  std::cout << "\n  agreement:   " << (r.agreement ? "yes" : "NO") << "\n"
            << "  termination: " << (r.termination ? "yes" : "NO") << "\n"
            << "  validity:    " << (r.validity ? "yes" : "NO") << "\n"
            << "  messages:    " << r.net.messages_sent << " ("
            << r.net.bytes_sent << " bytes)\n";
  return r.agreement && r.termination && r.validity ? 0 : 1;
}
