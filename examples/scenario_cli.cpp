// scenario_cli — run any consensus scenario from the command line.
//
// The adoptable front door: pick a protocol, group size, fault assignment,
// network model and seed; get the paper's correctness properties and cost
// metrics back, without writing C++.
//
// Usage:
//   scenario_cli bft   --n 7 --f 2 --seed 3 --fault 1:corrupt-vector
//                      --fault 4:mute [--substrate sim|threads|tcp]
//                      [--rsa] [--no-prune] [--turbulent] [--audit]
//                      [--budget-ms 20000]
//   scenario_cli crash --n 5 --seed 1 --protocol hr|ct --crash 1:0
//                      [--substrate sim|threads|tcp] [--mistakes 0.2]
//   scenario_cli tcp   --n 4 --f 1 --seed 3 --kill 0.05 --flip 0.02
//                      [--fault 1:corrupt-vector] [--budget-ms 30000]
//   scenario_cli campaign --n 4 --f 1 --seeds 8 [--attacks a,b,...]
//                      [--substrates sim,threads,tcp] [--base-seed 1]
//                      [--out report.json] [--no-negative-control]
//                      [--no-minimize] [--list] [--budget-ms 20000]
//   scenario_cli smr   --n 4 --backend crash|byz [--f 1] [--slots 8]
//                      [--window W] [--batch B] [--commands K]
//                      [--verify-workers V] [--substrate sim|threads|tcp]
//                      [--seed S] [--crash P:TIME_US]...
//                      [--checkpoint-interval C]
//                      [--restart P:KILL_US:RESTART_US]... [--budget-ms MS]
//
// `smr` runs the pipelined replicated KV machine (docs/SMR.md): --window
// sets the number of concurrent consensus instances per replica, --batch
// the commands committed per slot, --commands the synthetic workload size
// (slots default to ceil(commands / batch)).  --checkpoint-interval turns
// on certified checkpoints + log compaction (docs/RECOVERY.md); --restart
// kills replica P at KILL_US and brings it back at RESTART_US as a fresh
// actor that recovers via state transfer (requires --checkpoint-interval).
//
// Faults take `<process>:<behavior>` with 1-based process ids; behaviours:
//   crash mute corrupt-vector wrong-round duplicate-current duplicate-next
//   bad-signature strip-certificate substitute-next premature-decide
//   equivocate lie-init spurious-current split-brain future-round
//   stale-replay replay-cert truncate-cert forge-cert selective-mute
//
// `campaign` sweeps the adversary/ attack taxonomy over an
// (attack × substrate × seed) grid with the wire-level safety auditor
// tapped into every cell, minimizes failing attacks, and writes a JSON
// report — see docs/ADVERSARY.md.
//
// --substrate selects the execution backend (runtime::Backend): the
// deterministic simulator (default), the threaded in-memory cluster, or
// the TCP loopback cluster — the scenario itself is unchanged.  The `tcp`
// mode is the TCP substrate plus link faults injected below the framing
// layer: --kill/--truncate/--flip/--delay set the per-frame probability of
// each fault on every directed link, absorbed by the resilient transport.
#include <chrono>
#include <cstring>
#include <iostream>
#include <optional>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <fstream>

#include "adversary/attack.hpp"
#include "adversary/campaign.hpp"
#include "bft/bft_consensus.hpp"
#include "bft/config.hpp"
#include "crypto/hmac_signer.hpp"
#include "faults/byzantine.hpp"
#include "faults/link_fault.hpp"
#include "faults/scenario.hpp"
#include "runtime/substrate.hpp"
#include "sim/trace.hpp"
#include "transport/tcp_cluster.hpp"

namespace {

using namespace modubft;

[[noreturn]] void usage(const char* why) {
  std::cerr << "error: " << why << "\n\n"
            << "usage: scenario_cli bft   --n N --f F [--seed S] "
               "[--substrate sim|threads|tcp] [--fault P:BEHAVIOR]... "
               "[--rsa] [--no-prune] [--turbulent] "
               "[--audit] [--trace FILE] [--budget-ms MS]\n"
            << "       scenario_cli crash --n N [--seed S] [--protocol hr|ct] "
               "[--substrate sim|threads|tcp] "
               "[--crash P:TIME_US]... [--mistakes PROB]\n"
            << "       scenario_cli tcp   --n N --f F [--seed S] "
               "[--kill P] [--truncate P] [--flip P] [--delay P] "
               "[--fault P:BEHAVIOR]... [--budget-ms MS]\n"
            << "       scenario_cli campaign --n N --f F [--seeds K] "
               "[--attacks A,B,...] [--substrates sim,threads,tcp] "
               "[--base-seed S] [--out FILE] [--no-negative-control] "
               "[--no-minimize] [--list] [--budget-ms MS]\n"
            << "       scenario_cli smr   --n N --backend crash|byz [--f F] "
               "[--slots K] [--window W] [--batch B] [--commands C] "
               "[--verify-workers V] [--substrate sim|threads|tcp] "
               "[--seed S] [--crash P:TIME_US]... [--checkpoint-interval C] "
               "[--restart P:KILL_US:RESTART_US]... [--budget-ms MS]\n";
  std::exit(2);
}

std::optional<faults::Behavior> parse_behavior(const std::string& name) {
  using faults::Behavior;
  const std::pair<const char*, Behavior> table[] = {
      {"crash", Behavior::kCrash},
      {"mute", Behavior::kMute},
      {"corrupt-vector", Behavior::kCorruptVector},
      {"wrong-round", Behavior::kWrongRound},
      {"duplicate-current", Behavior::kDuplicateCurrent},
      {"duplicate-next", Behavior::kDuplicateNext},
      {"bad-signature", Behavior::kBadSignature},
      {"strip-certificate", Behavior::kStripCertificate},
      {"substitute-next", Behavior::kSubstituteNext},
      {"premature-decide", Behavior::kPrematureDecide},
      {"equivocate", Behavior::kEquivocate},
      {"lie-init", Behavior::kLieInit},
      {"spurious-current", Behavior::kSpuriousCurrent},
      {"future-round", Behavior::kFutureRound},
      {"stale-replay", Behavior::kStaleReplay},
      {"replay-cert", Behavior::kReplayCert},
      {"truncate-cert", Behavior::kTruncateCert},
      {"forge-cert", Behavior::kForgeCert},
      {"selective-mute", Behavior::kSelectiveMute},
      {"split-brain", Behavior::kSplitBrain},
  };
  for (auto& [n, b] : table) {
    if (name == n) return b;
  }
  return std::nullopt;
}

int run_bft(int argc, char** argv) {
  faults::BftScenarioConfig cfg;
  cfg.n = 0;
  std::string trace_path;

  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value after " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--n") {
      cfg.n = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--f") {
      cfg.f = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--seed") {
      cfg.seed = std::stoull(next());
    } else if (arg == "--substrate") {
      auto backend = runtime::parse_backend(next());
      if (!backend) usage("substrate must be sim, threads or tcp");
      cfg.substrate = *backend;
    } else if (arg == "--budget-ms") {
      cfg.budget = std::chrono::milliseconds(std::stoull(next()));
    } else if (arg == "--rsa") {
      cfg.scheme = faults::Scheme::kRsa64;
    } else if (arg == "--no-prune") {
      cfg.prune = false;
    } else if (arg == "--turbulent") {
      cfg.latency = sim::turbulent_until(200'000);
    } else if (arg == "--audit") {
      cfg.stop_on_decide = false;
    } else if (arg == "--trace") {
      trace_path = next();
    } else if (arg == "--fault") {
      std::string spec = next();
      auto colon = spec.find(':');
      if (colon == std::string::npos) usage("fault must be P:BEHAVIOR");
      const auto pid = std::stoul(spec.substr(0, colon));
      auto behavior = parse_behavior(spec.substr(colon + 1));
      if (!behavior || pid < 1) usage("unknown fault behaviour or process");
      faults::FaultSpec f;
      f.who = ProcessId{static_cast<std::uint32_t>(pid - 1)};
      f.behavior = *behavior;
      cfg.faults.push_back(f);
    } else {
      usage(("unknown flag " + arg).c_str());
    }
  }
  if (cfg.n == 0) usage("--n is required");
  if (cfg.f > bft::max_tolerated_faults(cfg.n)) {
    std::cerr << "note: F=" << cfg.f << " exceeds min((n-1)/2, (n-1)/3) = "
              << bft::max_tolerated_faults(cfg.n)
              << "; overriding the certification bound (guarantees void — "
                 "see bench_e9)\n";
    cfg.certification_bound = cfg.f;
  }

  sim::TraceRecorder trace;
  if (!trace_path.empty()) {
    cfg.delivery_tap = [&trace](const sim::Delivery& d) { trace.record(d); };
  }

  faults::BftScenarioResult r = faults::run_bft_scenario(cfg);

  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    trace.write_jsonl(out);
    std::cerr << "trace: " << trace.events().size() << " deliveries -> "
              << trace_path << " (fingerprint " << std::hex
              << trace.fingerprint() << std::dec << ")\n";
  }

  std::size_t correct_decided = 0;
  for (std::uint32_t i : r.correct) correct_decided += r.decisions.count(i);

  std::cout << "protocol:            transformed BFT vector consensus\n"
            << "substrate:           " << runtime::backend_name(cfg.substrate)
            << " (" << runtime::run_outcome_name(r.outcome) << ")\n"
            << "n / F / quorum:      " << cfg.n << " / " << cfg.f << " / "
            << cfg.n - cfg.f << "\n"
            << "decided:             " << correct_decided << "/"
            << r.correct.size() << " correct processes\n"
            << "termination:         " << (r.termination ? "yes" : "NO") << "\n"
            << "agreement:           " << (r.agreement ? "yes" : "NO") << "\n"
            << "vector validity:     " << (r.vector_validity ? "yes" : "NO")
            << " (correct entries >= " << r.min_correct_entries << ")\n"
            << "detectors reliable:  " << (r.detectors_reliable ? "yes" : "NO")
            << "\n"
            << "decision round:      " << r.max_decision_round.value << "\n"
            << "decision time:       " << r.last_decision_time / 1000.0
            << " sim ms\n"
            << "messages / bytes:    " << r.net.messages_sent << " / "
            << r.net.bytes_sent << "\n"
            << "largest message:     " << r.max_message_bytes << " bytes\n";
  if (!r.declared_faulty.empty()) {
    std::cout << "convicted processes:";
    for (std::uint32_t p : r.declared_faulty) std::cout << " p" << p + 1;
    std::cout << "\n";
  }
  std::map<std::string, int> grouped;
  for (const auto& rec : r.records) {
    std::ostringstream os;
    os << rec.culprit << ": " << bft::fault_kind_name(rec.kind) << " — "
       << rec.detail;
    grouped[os.str()] += 1;
  }
  for (const auto& [what, count] : grouped) {
    std::cout << "  detection ×" << count << "  " << what << "\n";
  }
  std::cout << "run stats:           "
            << runtime::to_json(cfg.substrate, r.run_stats) << "\n";
  return r.termination && r.agreement && r.vector_validity ? 0 : 1;
}

int run_crash(int argc, char** argv) {
  faults::CrashScenarioConfig cfg;
  cfg.n = 0;

  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value after " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--n") {
      cfg.n = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--seed") {
      cfg.seed = std::stoull(next());
    } else if (arg == "--substrate") {
      auto backend = runtime::parse_backend(next());
      if (!backend) usage("substrate must be sim, threads or tcp");
      cfg.substrate = *backend;
    } else if (arg == "--protocol") {
      std::string p = next();
      if (p == "hr") {
        cfg.protocol = faults::CrashProtocol::kHurfinRaynal;
      } else if (p == "ct") {
        cfg.protocol = faults::CrashProtocol::kChandraToueg;
      } else {
        usage("protocol must be hr or ct");
      }
    } else if (arg == "--crash") {
      std::string spec = next();
      auto colon = spec.find(':');
      if (colon == std::string::npos) usage("crash must be P:TIME_US");
      const auto pid = std::stoul(spec.substr(0, colon));
      const auto at = std::stoull(spec.substr(colon + 1));
      if (pid < 1) usage("process ids are 1-based");
      if (cfg.crash_times.size() < pid) cfg.crash_times.resize(pid);
      cfg.crash_times[pid - 1] = SimTime{at};
    } else if (arg == "--mistakes") {
      cfg.oracle.false_suspicion_prob = std::stod(next());
      cfg.oracle.stabilization_time = 300'000;
    } else {
      usage(("unknown flag " + arg).c_str());
    }
  }
  if (cfg.n == 0) usage("--n is required");
  cfg.crash_times.resize(cfg.n);

  faults::CrashScenarioResult r = faults::run_crash_scenario(cfg);

  // On wall-clock substrates a late-crashing process may decide before the
  // crash lands; count decisions over the correct set only.
  std::size_t correct_decided = 0;
  for (std::uint32_t i : r.correct) correct_decided += r.decisions.count(i);

  std::cout << "protocol:        "
            << (cfg.protocol == faults::CrashProtocol::kHurfinRaynal
                    ? "Hurfin-Raynal"
                    : "Chandra-Toueg")
            << " (crash model, oracle ◇S)\n"
            << "substrate:       " << runtime::backend_name(cfg.substrate)
            << " (" << runtime::run_outcome_name(r.outcome) << ")\n"
            << "n:               " << cfg.n << "\n"
            << "decided:         " << correct_decided << "/"
            << r.correct.size() << " correct processes\n"
            << "termination:     " << (r.termination ? "yes" : "NO") << "\n"
            << "agreement:       " << (r.agreement ? "yes" : "NO") << "\n"
            << "validity:        " << (r.validity ? "yes" : "NO") << "\n"
            << "decision round:  " << r.max_decision_round.value << "\n"
            << "decision time:   " << r.last_decision_time / 1000.0
            << " sim ms\n"
            << "messages/bytes:  " << r.net.messages_sent << " / "
            << r.net.bytes_sent << "\n";
  return r.termination && r.agreement && r.validity ? 0 : 1;
}

int run_tcp(int argc, char** argv) {
  // The TCP substrate via the generic runner, plus link chaos: everything
  // the hand-wired version did, in one BftScenarioConfig.
  faults::BftScenarioConfig cfg;
  cfg.n = 0;
  cfg.substrate = runtime::Backend::kTcp;
  cfg.budget = std::chrono::milliseconds(30'000);
  faults::LinkFaultSpec link;

  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value after " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--n") {
      cfg.n = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--f") {
      cfg.f = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--seed") {
      cfg.seed = std::stoull(next());
    } else if (arg == "--kill") {
      link.kill_prob = std::stod(next());
    } else if (arg == "--truncate") {
      link.truncate_prob = std::stod(next());
    } else if (arg == "--flip") {
      link.flip_prob = std::stod(next());
    } else if (arg == "--delay") {
      link.delay_prob = std::stod(next());
    } else if (arg == "--budget-ms") {
      cfg.budget = std::chrono::milliseconds(std::stoull(next()));
    } else if (arg == "--fault") {
      std::string spec = next();
      auto colon = spec.find(':');
      if (colon == std::string::npos) usage("fault must be P:BEHAVIOR");
      const auto pid = std::stoul(spec.substr(0, colon));
      auto behavior = parse_behavior(spec.substr(colon + 1));
      if (!behavior || pid < 1) usage("unknown fault behaviour or process");
      faults::FaultSpec fs;
      fs.who = ProcessId{static_cast<std::uint32_t>(pid - 1)};
      fs.behavior = *behavior;
      cfg.faults.push_back(fs);
    } else {
      usage(("unknown flag " + arg).c_str());
    }
  }
  if (cfg.n == 0) usage("--n is required");
  if (cfg.f > bft::max_tolerated_faults(cfg.n)) {
    usage("F exceeds min((n-1)/2,(n-1)/3)");
  }
  // Chaos makes rounds slow; widen ◇M beyond the runner's TCP default.
  cfg.muteness.initial_timeout = 2'000'000;
  const bool any_link_fault = link.kill_prob > 0 || link.truncate_prob > 0 ||
                              link.flip_prob > 0 || link.delay_prob > 0;
  if (any_link_fault) cfg.link_faults = {link};

  faults::BftScenarioResult r = faults::run_bft_scenario(cfg);

  std::size_t correct_decided = 0;
  for (std::uint32_t i : r.correct) correct_decided += r.decisions.count(i);

  const transport::TcpLinkStats& stats = r.run_stats.link;
  std::cout << "protocol:            transformed BFT over loopback TCP\n"
            << "n / F / quorum:      " << cfg.n << " / " << cfg.f << " / "
            << cfg.n - cfg.f << "\n"
            << "decided:             " << correct_decided << "/"
            << r.correct.size() << " correct processes\n"
            << "agreement:           " << (r.agreement ? "yes" : "NO") << "\n"
            << "clean shutdown:      " << (r.clean ? "yes" : "NO") << " ("
            << r.unstopped.size() << " unstopped)\n"
            << "frames / bytes sent: " << r.run_stats.wire_frames << " / "
            << r.run_stats.wire_bytes << "\n"
            << "link faults:         kills " << stats.kills_injected
            << ", truncates " << stats.truncates_injected << ", flips "
            << stats.flips_injected << ", delays " << stats.delays_injected
            << "\n"
            << "recovery:            reconnects " << stats.reconnects
            << ", retransmits " << stats.retransmits << ", checksum drops "
            << stats.checksum_failures << ", dups suppressed "
            << stats.dup_suppressed << "\n"
            << "degraded links:      " << stats.degraded_links << "\n"
            << "run stats:           "
            << runtime::to_json(cfg.substrate, r.run_stats) << "\n";
  return correct_decided == r.correct.size() && r.agreement ? 0 : 1;
}

int run_smr(int argc, char** argv) {
  faults::SmrScenarioConfig cfg;
  cfg.n = 0;
  std::optional<std::uint64_t> slots_flag;
  std::uint32_t commands = 0;

  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value after " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--n") {
      cfg.n = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--f") {
      cfg.f = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--seed") {
      cfg.seed = std::stoull(next());
    } else if (arg == "--substrate") {
      auto backend = runtime::parse_backend(next());
      if (!backend) usage("substrate must be sim, threads or tcp");
      cfg.substrate = *backend;
    } else if (arg == "--backend") {
      std::string b = next();
      if (b == "crash") {
        cfg.backend = smr::Backend::kCrashHurfinRaynal;
      } else if (b == "byz") {
        cfg.backend = smr::Backend::kByzantine;
      } else {
        usage("backend must be crash or byz");
      }
    } else if (arg == "--slots") {
      slots_flag = std::stoull(next());
    } else if (arg == "--window") {
      cfg.window = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--batch") {
      cfg.batch = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--commands") {
      commands = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--verify-workers") {
      cfg.verify_workers = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--budget-ms") {
      cfg.budget = std::chrono::milliseconds(std::stoull(next()));
    } else if (arg == "--checkpoint-interval") {
      cfg.checkpoint_interval = std::stoull(next());
    } else if (arg == "--crash") {
      std::string spec = next();
      auto colon = spec.find(':');
      if (colon == std::string::npos) usage("crash must be P:TIME_US");
      const auto pid = std::stoul(spec.substr(0, colon));
      const auto at = std::stoull(spec.substr(colon + 1));
      if (pid < 1) usage("process ids are 1-based");
      cfg.crashes.push_back(
          faults::CrashSpec{ProcessId{static_cast<std::uint32_t>(pid - 1)},
                            SimTime{at}, std::nullopt});
    } else if (arg == "--restart") {
      std::string spec = next();
      auto c1 = spec.find(':');
      auto c2 = c1 == std::string::npos ? std::string::npos
                                        : spec.find(':', c1 + 1);
      if (c2 == std::string::npos) {
        usage("restart must be P:KILL_US:RESTART_US");
      }
      const auto pid = std::stoul(spec.substr(0, c1));
      const auto kill_at = std::stoull(spec.substr(c1 + 1, c2 - c1 - 1));
      const auto back_at = std::stoull(spec.substr(c2 + 1));
      if (pid < 1) usage("process ids are 1-based");
      if (back_at <= kill_at) usage("RESTART_US must be > KILL_US");
      cfg.crashes.push_back(
          faults::CrashSpec{ProcessId{static_cast<std::uint32_t>(pid - 1)},
                            SimTime{kill_at}, SimTime{back_at}});
    } else {
      usage(("unknown flag " + arg).c_str());
    }
  }
  if (cfg.n == 0) usage("--n is required");
  if (cfg.window < 1 || cfg.batch < 1) usage("--window/--batch must be >= 1");
  for (const faults::CrashSpec& c : cfg.crashes) {
    if (c.restart_at.has_value() && cfg.checkpoint_interval == 0) {
      usage("--restart requires --checkpoint-interval");
    }
  }

  if (commands > 0) {
    // Synthetic workload: K puts/deletes cycling over 8 keys.
    for (std::uint32_t c = 1; c <= commands; ++c) {
      smr::Command cmd;
      cmd.id = c;
      cmd.key = "key" + std::to_string(c % 8);
      if (c % 5 == 0) {
        cmd.op = smr::Command::Op::kDel;
      } else {
        cmd.op = smr::Command::Op::kPut;
        cmd.value = "v" + std::to_string(c);
      }
      cfg.workload.push_back(cmd);
    }
  }
  const std::size_t workload_size =
      cfg.workload.empty() ? faults::sample_workload().size()
                           : cfg.workload.size();
  // Default slot count: just enough slots to drain the workload.
  cfg.slots = slots_flag.value_or(
      (workload_size + cfg.batch - 1) / cfg.batch);

  faults::SmrScenarioResult r = faults::run_smr_scenario(cfg);

  const runtime::PipelineSummary& pipe = r.run_stats.pipeline;
  const double wall_s = static_cast<double>(r.run_stats.wall_us) / 1e6;
  std::cout << "protocol:        pipelined SMR ("
            << (cfg.backend == smr::Backend::kByzantine
                    ? "Byzantine vector consensus"
                    : "Hurfin-Raynal, crash model")
            << ")\n"
            << "substrate:       " << runtime::backend_name(cfg.substrate)
            << " (" << runtime::run_outcome_name(r.outcome) << ")\n"
            << "n / slots:       " << cfg.n << " / " << cfg.slots << "\n"
            << "window / batch:  " << cfg.window << " / " << cfg.batch << "\n"
            << "all committed:   " << (r.all_committed ? "yes" : "NO") << "\n"
            << "stores agree:    " << (r.stores_agree ? "yes" : "NO") << "\n"
            << "commands:        " << pipe.commands_committed << " ("
            << pipe.noop_slots << " no-op slots, max batch "
            << pipe.max_batch << ")\n"
            << "window peak/avg: " << pipe.window_peak << " / "
            << pipe.avg_window << "\n";
  if (cfg.checkpoint_interval > 0) {
    std::cout << "checkpoints:     " << pipe.checkpoints_taken << " taken, "
              << pipe.checkpoint_certs << " certified, " << pipe.log_truncated
              << " slots compacted (log peak " << pipe.log_peak << ")\n"
              << "recovered:       " << r.recovered.size() << " replica(s)";
    for (std::uint32_t p : r.recovered) std::cout << " p" << p + 1;
    std::cout << " (worst rejoin " << pipe.recovery_us / 1000.0 << " ms)\n";
  }
  if (wall_s > 0) {
    std::cout << "commits/sec:     "
              << static_cast<double>(pipe.commands_committed) / wall_s << "\n";
  }
  std::cout << "run stats:       "
            << runtime::to_json(cfg.substrate, r.run_stats) << "\n";
  return r.all_committed && r.stores_agree ? 0 : 1;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream is(csv);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

int run_campaign_mode(int argc, char** argv) {
  adversary::CampaignConfig cfg;
  std::string out_path;
  bool list_only = false;

  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value after " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--n") {
      cfg.n = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--f") {
      cfg.f = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--seeds") {
      cfg.seeds = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--base-seed") {
      cfg.base_seed = std::stoull(next());
    } else if (arg == "--attacks") {
      cfg.attacks = split_csv(next());
    } else if (arg == "--substrates") {
      cfg.substrates.clear();
      for (const std::string& name : split_csv(next())) {
        auto backend = runtime::parse_backend(name);
        if (!backend) usage("substrates must be sim, threads or tcp");
        cfg.substrates.push_back(*backend);
      }
      if (cfg.substrates.empty()) usage("--substrates needs at least one");
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--budget-ms") {
      cfg.budget = std::chrono::milliseconds(std::stoull(next()));
    } else if (arg == "--no-negative-control") {
      cfg.negative_control = false;
    } else if (arg == "--no-minimize") {
      cfg.minimize_failures = false;
    } else if (arg == "--list") {
      list_only = true;
    } else {
      usage(("unknown flag " + arg).c_str());
    }
  }
  if (cfg.n == 0) usage("--n is required");
  if (cfg.f > bft::max_tolerated_faults(cfg.n)) {
    usage("F exceeds min((n-1)/2,(n-1)/3)");
  }

  if (list_only) {
    for (const adversary::AttackSpec& a :
         adversary::attack_catalog(cfg.n, cfg.f)) {
      std::cout << a.name << "  [" << a.paper_class << "]  " << a.description
                << "\n";
    }
    return 0;
  }

  const adversary::CampaignReport report = adversary::run_campaign(cfg);

  for (const adversary::CellOutcome& cell : report.cells) {
    if (cell.pass) continue;
    std::cout << "FAIL " << cell.attack << " on "
              << runtime::backend_name(cell.substrate) << " seed " << cell.seed
              << ":";
    for (const adversary::Violation& v : cell.audit.violations) {
      std::cout << " [" << adversary::violation_name(v.kind) << "] "
                << v.detail;
    }
    if (!cell.termination) std::cout << " [no-termination]";
    if (!cell.minimized.empty()) std::cout << "\n  minimized: "
                                           << cell.minimized;
    std::cout << "\n";
  }
  std::cout << "campaign:          " << report.cells_run << " cells, "
            << report.cells_failed << " failed (n=" << report.n
            << ", f=" << report.f << ")\n";
  if (report.negative_control_ran) {
    std::cout << "negative control:  "
              << (report.negative_control_flagged ? "flagged" : "MISSED");
    for (const std::string& kind : report.negative_control_kinds) {
      std::cout << " " << kind;
    }
    std::cout << "\n";
  }
  std::cout << "verdict:           " << (report.ok ? "OK" : "VIOLATIONS")
            << "\n";

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << adversary::to_json(cfg, report);
    std::cout << "report:            " << out_path << "\n";
  }
  return report.ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage("missing mode");
  if (std::strcmp(argv[1], "bft") == 0) return run_bft(argc, argv);
  if (std::strcmp(argv[1], "crash") == 0) return run_crash(argc, argv);
  if (std::strcmp(argv[1], "tcp") == 0) return run_tcp(argc, argv);
  if (std::strcmp(argv[1], "campaign") == 0) {
    return run_campaign_mode(argc, argv);
  }
  if (std::strcmp(argv[1], "smr") == 0) return run_smr(argc, argv);
  usage("mode must be 'bft', 'crash', 'tcp', 'campaign' or 'smr'");
}
