// Interactive Consistency — the 1980 synchronous ancestor of the paper's
// Vector Consensus (footnote 6 / reference [11]).
//
// Runs the Pease–Shostak–Lamport EIG oral-messages algorithm with one
// equivocating Byzantine process, then the paper's asynchronous
// transformed protocol on the same task, and prints both vectors and
// costs side by side.
//
//   ./examples/interactive_consistency
#include <iostream>
#include <map>

#include "faults/scenario.hpp"
#include "sync/eig_ic.hpp"

int main() {
  using namespace modubft;
  constexpr std::uint32_t kN = 4;
  constexpr std::uint32_t kF = 1;

  // ---- synchronous EIG ----
  std::map<std::uint32_t, std::vector<sync::Value>> vectors;
  std::vector<std::unique_ptr<sync::SyncProcess>> procs;
  for (std::uint32_t i = 0; i < kN; ++i) {
    if (i == 1) {
      procs.push_back(std::make_unique<sync::EigLiar>(kN, kF, ProcessId{i}));
    } else {
      procs.push_back(std::make_unique<sync::EigProcess>(
          kN, kF, ProcessId{i}, 1000 + i,
          [&vectors](ProcessId who, const std::vector<sync::Value>& v) {
            vectors.emplace(who.value, v);
          }));
    }
  }
  sync::SyncStats stats =
      sync::run_lockstep_rounds(procs, sync::EigProcess::rounds_for(kF));

  std::cout << "Interactive Consistency (EIG, synchronous, f+1 = "
            << sync::EigProcess::rounds_for(kF)
            << " rounds), p2 equivocates:\n";
  for (auto& [i, v] : vectors) {
    std::cout << "  p" << (i + 1) << " vector = [";
    for (std::size_t j = 0; j < v.size(); ++j) {
      if (j) std::cout << ", ";
      std::cout << v[j];
    }
    std::cout << "]\n";
  }
  std::cout << "  cost: " << stats.messages << " messages, " << stats.bytes
            << " bytes\n\n";

  // ---- asynchronous transformed protocol, same task ----
  faults::BftScenarioConfig cfg;
  cfg.n = kN;
  cfg.f = kF;
  faults::FaultSpec liar;
  liar.who = ProcessId{1};
  liar.behavior = faults::Behavior::kLieInit;
  cfg.faults = {liar};
  faults::BftScenarioResult r = faults::run_bft_scenario(cfg);

  std::cout << "Vector Consensus (transformed protocol, asynchronous), "
               "p2 lies about its value:\n";
  for (auto& [i, d] : r.decisions) {
    std::cout << "  p" << (i + 1) << " vector = [";
    for (std::size_t j = 0; j < d.entries.size(); ++j) {
      if (j) std::cout << ", ";
      if (d.entries[j].has_value()) std::cout << *d.entries[j];
      else std::cout << "null";
    }
    std::cout << "]\n";
  }
  std::cout << "  cost: " << r.net.messages_sent << " messages, "
            << r.net.bytes_sent << " bytes\n\n";

  const bool ok = !vectors.empty() && r.agreement && r.termination &&
                  r.vector_validity;
  std::cout << "Both systems agree internally; the async protocol needs no "
               "synchrony,\npaying in signatures/certificates what EIG pays "
               "in rounds and fan-out.\n";
  return ok ? 0 : 1;
}
