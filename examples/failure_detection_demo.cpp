// Walks the paper's failure taxonomy (§2): injects every failure class in
// isolation and reports which module caught it and how it was classified —
// an executable rendering of Figure 4's automaton transitions.
//
//   ./examples/failure_detection_demo
#include <iomanip>
#include <iostream>

#include "faults/scenario.hpp"

int main() {
  using namespace modubft;
  using faults::Behavior;

  struct Case {
    Behavior behavior;
    const char* module;  // which module the methodology assigns
    bool needs_next_traffic;
  };
  const Case cases[] = {
      {Behavior::kMute, "muteness FD (suspicion, not conviction)", false},
      {Behavior::kCorruptVector, "non-muteness FD / certification", false},
      {Behavior::kWrongRound, "non-muteness FD (state machine)", false},
      {Behavior::kDuplicateCurrent, "non-muteness FD (state machine)", false},
      {Behavior::kDuplicateNext, "non-muteness FD (state machine)", true},
      {Behavior::kBadSignature, "signature module", false},
      {Behavior::kStripCertificate, "certification module", false},
      {Behavior::kSubstituteNext, "non-muteness FD (program text)", false},
      {Behavior::kPrematureDecide, "certification module", false},
      {Behavior::kEquivocate, "certification module (equivocation)", false},
      {Behavior::kSpuriousCurrent, "non-muteness FD (state machine)", true},
      {Behavior::kLieInit, "— undetectable by design (paper §1)", false},
  };

  std::cout << "Injecting each failure class into one process and running the\n"
               "transformed protocol (audit mode).  F within bounds, so all\n"
               "runs must agree and terminate regardless of detection.\n\n";
  std::cout << std::left << std::setw(20) << "behaviour" << std::setw(44)
            << "responsible module" << std::setw(12) << "convicted"
            << "classification(s)\n"
            << std::string(100, '-') << "\n";

  bool all_good = true;
  for (const Case& c : cases) {
    faults::BftScenarioConfig cfg;
    cfg.n = c.needs_next_traffic ? 7 : 4;
    cfg.f = c.needs_next_traffic ? 2 : 1;
    cfg.seed = 1000 + static_cast<int>(c.behavior);
    cfg.stop_on_decide = false;

    faults::FaultSpec spec;
    spec.who = ProcessId{c.behavior == Behavior::kCorruptVector ||
                                 c.behavior == Behavior::kEquivocate ||
                                 c.behavior == Behavior::kSubstituteNext ||
                                 c.behavior == Behavior::kStripCertificate
                             ? 0u   // coordinator-manifested faults
                             : 2u};
    spec.behavior = c.behavior;
    cfg.faults = {spec};
    if (c.needs_next_traffic) {
      faults::FaultSpec mute;
      mute.who = ProcessId{0};
      mute.behavior = Behavior::kMute;
      cfg.faults.push_back(mute);
    }

    faults::BftScenarioResult r = faults::run_bft_scenario(cfg);
    all_good = all_good && r.agreement && r.termination;

    std::string kinds;
    for (const auto& rec : r.records) {
      if (rec.culprit != spec.who) continue;
      std::string k = bft::fault_kind_name(rec.kind);
      if (kinds.find(k) == std::string::npos) {
        if (!kinds.empty()) kinds += ", ";
        kinds += k;
      }
    }
    const bool convicted = r.declared_faulty.count(spec.who.value) > 0;
    std::cout << std::left << std::setw(20) << behavior_name(c.behavior)
              << std::setw(44) << c.module << std::setw(12)
              << (convicted ? "yes" : "no")
              << (kinds.empty() ? "-" : kinds) << "\n";
  }

  std::cout << "\nall runs agreed and terminated: " << (all_good ? "yes" : "NO")
            << "\n";
  return all_good ? 0 : 1;
}
