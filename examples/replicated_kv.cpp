// Replicated key-value store on Byzantine vector consensus.
//
// The downstream application the paper motivates: four replicas order a
// stream of client commands through repeated instances of the transformed
// protocol; one replica is silenced (Byzantine-mute).  All correct replicas
// converge to the same store contents.
//
//   ./examples/replicated_kv [seed]
#include <cstdlib>
#include <iostream>

#include "crypto/hmac_signer.hpp"
#include "sim/simulation.hpp"
#include "smr/replica.hpp"

int main(int argc, char** argv) {
  using namespace modubft;
  using smr::Command;

  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4;
  constexpr std::uint32_t kN = 4;

  const std::vector<Command> workload = {
      {1, Command::Op::kPut, "user:alice", "admin"},
      {2, Command::Op::kPut, "user:bob", "guest"},
      {3, Command::Op::kPut, "quota", "100"},
      {4, Command::Op::kPut, "user:bob", "member"},
      {5, Command::Op::kDel, "quota", ""},
      {6, Command::Op::kPut, "user:carol", "guest"},
  };

  crypto::SignatureSystem keys = crypto::HmacScheme{}.make_system(kN, seed);

  sim::SimConfig sim_cfg;
  sim_cfg.n = kN;
  sim_cfg.seed = seed;
  sim::Simulation world(sim_cfg);

  bft::BftConfig bft_cfg;
  bft_cfg.n = kN;
  bft_cfg.f = 1;

  std::vector<smr::Replica*> replicas(kN, nullptr);
  for (std::uint32_t i = 0; i < kN; ++i) {
    smr::ReplicaConfig cfg;
    cfg.n = kN;
    cfg.backend = smr::Backend::kByzantine;
    cfg.slots = workload.size();
    cfg.bft = bft_cfg;
    cfg.signer = keys.signers[i].get();
    cfg.verifier = keys.verifier;

    smr::CommitFn on_commit;
    if (i == 0) {
      on_commit = [](InstanceId slot, const Command* cmd,
                     const smr::KvStore&) {
        std::cout << "  slot " << slot.value << ": ";
        if (cmd == nullptr) {
          std::cout << "(no-op)\n";
        } else if (cmd->op == Command::Op::kPut) {
          std::cout << "PUT " << cmd->key << " = " << cmd->value << "\n";
        } else {
          std::cout << "DEL " << cmd->key << "\n";
        }
      };
    }

    auto replica = std::make_unique<smr::Replica>(cfg, workload, on_commit);
    replicas[i] = replica.get();
    world.set_actor(ProcessId{i}, std::move(replica));
  }
  // p4 is Byzantine-silent for the whole run.
  world.crash_at(ProcessId{3}, 0);

  std::cout << "Replicated KV store: n=4 (p4 silent), " << workload.size()
            << " commands, seed=" << seed << "\n\ncommit log (replica p1):\n";
  world.run();

  std::cout << "\nfinal state per correct replica:\n";
  bool converged = true;
  for (std::uint32_t i = 0; i < 3; ++i) {
    std::cout << "  p" << (i + 1) << ": {";
    bool first = true;
    for (const auto& [k, v] : replicas[i]->store().contents()) {
      if (!first) std::cout << ", ";
      std::cout << k << ": " << v;
      first = false;
    }
    std::cout << "}  (" << replicas[i]->committed_slots() << " slots)\n";
    converged = converged &&
                replicas[i]->store().contents() ==
                    replicas[0]->store().contents();
  }
  std::cout << "\nreplicas converged: " << (converged ? "yes" : "NO") << "\n";
  return converged ? 0 : 1;
}
